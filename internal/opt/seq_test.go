package opt_test

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/montecarlo"
	"repro/internal/opt"
	"repro/internal/ssta"
)

// TestSequentialOptimizationEndToEnd runs the full headline flow on a
// sequential circuit: both optimizers, feasibility at the clock-period
// constraint, the statistical advantage, and MC confirmation. This is
// the integration test for the DFF timing semantics threaded through
// sta/ssta/opt/montecarlo.
func TestSequentialOptimizationEndToEnd(t *testing.T) {
	base := suite(t, "q1423")
	if !base.Circuit.Sequential() {
		t.Fatal("fixture lost the flip-flops")
	}
	ref := base.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)

	det := base.Clone()
	if _, err := opt.Deterministic(det, o); err != nil {
		t.Fatal(err)
	}
	detEval, err := opt.EvaluateStatistical(det, o)
	if err != nil {
		t.Fatal(err)
	}

	st := base.Clone()
	sres, err := opt.Statistical(st, o)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Feasible {
		t.Fatalf("statistical infeasible on sequential circuit: yield %g", sres.YieldAtTmax)
	}
	if sres.LeakPctNW >= detEval.LeakPctNW {
		t.Errorf("statistical q99 %g not below deterministic %g on sequential circuit",
			sres.LeakPctNW, detEval.LeakPctNW)
	}
	// DFFs themselves must be optimizable: some should have gone HVT.
	hvtFF := 0
	for _, f := range st.Circuit.Dffs() {
		if st.Vth[f] == 1 { // tech.HighVth
			hvtFF++
		}
	}
	if hvtFF == 0 {
		t.Error("no flip-flop was moved to HVT; FFs excluded from the move set?")
	}
	// MC confirms the sequential yield claim (min clock period per die).
	mc, err := montecarlo.Run(st, montecarlo.Config{Samples: 1000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if y := mustYield(t, mc, o.TmaxPs); y < o.YieldTarget-0.03 {
		t.Errorf("MC yield %g far below target", y)
	}
}

func TestSequentialSSTAConsistency(t *testing.T) {
	d := suite(t, "q344")
	sr, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Delay.Mean <= 0 || sr.Delay.Sigma() <= 0 {
		t.Fatal("degenerate sequential SSTA")
	}
	// FF arrivals are their own canonical clock-to-Q forms.
	for _, f := range d.Circuit.Dffs() {
		want := ssta.GateDelayCanonical(d, f)
		got := sr.Arrival(f)
		if got.Mean != want.Mean || got.Rand != want.Rand {
			t.Fatalf("DFF %d arrival form differs from its clk-to-Q form", f)
		}
	}
	// MC agreement on the min clock period.
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 2000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ds := mc.DelaySummary()
	if rel := abs(sr.Delay.Mean-ds.Mean) / ds.Mean; rel > 0.05 {
		t.Errorf("sequential SSTA mean %g vs MC %g (%.1f%%)", sr.Delay.Mean, ds.Mean, rel*100)
	}
	// Launch points: FF gates must not appear mid-path in the stat
	// critical walk semantics — indirectly checked by the optimizer
	// test above; here check levels.
	lv, err := d.Circuit.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Circuit.Dffs() {
		if lv[f] != 0 {
			t.Errorf("DFF %d at level %d, want 0", f, lv[f])
		}
	}
	_ = logic.Dff
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
