package opt

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/search"
	"repro/internal/tech"
)

// AnnealConfig tunes the simulated-annealing optimizer. Annealing is
// not the paper's algorithm — it is the classic global-search
// comparison point (ablation A4) used to judge how close the greedy
// sensitivity heuristic gets to a slower, assumption-free search.
type AnnealConfig struct {
	Moves     int     // total proposed moves
	StartTemp float64 // initial temperature, as a fraction of the initial objective
	EndTemp   float64 // final temperature fraction
	Seed      int64
	// YieldPenalty scales the constraint-violation term: objective =
	// q_pct(leak) · (1 + YieldPenalty·max(0, η−yield)).
	YieldPenalty float64
}

// DefaultAnnealConfig returns a schedule sized for the ablation
// circuits (a few hundred gates).
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{
		Moves:        20000,
		StartTemp:    0.05,
		EndTemp:      0.0005,
		Seed:         1,
		YieldPenalty: 200,
	}
}

// Anneal runs simulated annealing over the (Vth, size) assignment,
// minimizing the objective leakage percentile with a smooth penalty
// for missing the timing-yield target. Every proposed state is
// evaluated through the engine — cone-local incremental re-timing with
// a periodic full refresh — so the walk costs O(cone) per move instead
// of a full SSTA; the final state is the best feasible one seen. The
// trajectory is deterministic per seed.
func Anneal(d *core.Design, o Options, cfg AnnealConfig) (*StatResult, error) {
	//lint:ignore ctxflow uncancellable compatibility wrapper; callers needing deadlines use AnnealCtx
	return AnnealCtx(context.Background(), d, o, cfg)
}

// AnnealCtx is Anneal with cancellation: the walk checks ctx once per
// proposed move and returns ctx.Err(), leaving the design in the last
// consistent (fully applied or fully reverted) state.
func AnnealCtx(ctx context.Context, d *core.Design, o Options, cfg AnnealConfig) (*StatResult, error) {
	start := time.Now()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &StatResult{}

	e, fam, err := newEvaluator(d, o)
	if err != nil {
		return nil, err
	}
	evalObjective := func() (obj, yield, q float64, err error) {
		yield, err = e.Yield()
		if err != nil {
			return 0, 0, 0, err
		}
		q, err = e.LeakQuantile(o.LeakPercentile)
		if err != nil {
			return 0, 0, 0, err
		}
		obj = q * (1 + cfg.YieldPenalty*math.Max(0, o.YieldTarget-yield))
		return obj, yield, q, nil
	}

	var gates []int
	for _, g := range d.Circuit.Gates() {
		if g.Type.Arity() > 0 || g.Type.Sequential() {
			gates = append(gates, g.ID)
		}
	}

	cur, yield, q, err := evalObjective()
	if err != nil {
		return nil, err
	}
	bestFeasible := math.Inf(1)
	var bestState *core.Design
	if yield >= o.YieldTarget {
		bestFeasible = q
		bestState = d.Clone()
	}
	t0 := cfg.StartTemp * cur
	t1 := cfg.EndTemp * cur
	if t1 <= 0 {
		t1 = 1e-12
	}

	// The walk as a first-accept policy: one random move per round, the
	// Metropolis criterion as the verification predicate. The RNG draw
	// order (gate, move type, direction, acceptance coin — the coin only
	// when the candidate is uphill) fixes the trajectory per seed.
	//
	// The policy deliberately declines the speculative pipeline (no
	// Prefetch): the next proposal consumes RNG draws, and a prefetch
	// would have to either replay them (racing the serial draw order)
	// or fork the RNG (diverging from the pinned per-seed trajectory).
	// The scan is a constant-work draw anyway — there is nothing
	// expensive to overlap.
	m := -1
	var temp float64
	var cand, candYield, candQ float64
	tally, err := search.RunWith(ctx, e, search.Policy{
		Optimizer: "anneal",
		Propose: func(_ context.Context, t *search.Tally) (*search.Round, error) {
			m++
			if m >= cfg.Moves {
				return nil, nil
			}
			temp = t0 * math.Pow(t1/t0, float64(m)/float64(cfg.Moves))
			id := gates[rng.Intn(len(gates))]
			d := e.Design()

			// Flip Vth, or step the size one notch either way.
			var mv engine.Move
			switch {
			case o.EnableVth && (!o.EnableSizing || rng.Intn(2) == 0):
				next := tech.LowVth
				if d.Vth[id] == tech.LowVth {
					next = tech.HighVth
				}
				swap, err := engine.NewVthSwap(d, id, next)
				if err != nil {
					return nil, err
				}
				mv = swap
			default:
				si := d.SizeIndex(id)
				up := true
				if si == 0 {
					up = true
				} else if si == len(d.Lib.Sizes)-1 {
					up = false
				} else if rng.Intn(2) == 0 {
					up = false
				}
				var ok bool
				var rz engine.Resize
				if up {
					rz, ok = engine.NewUpsize(d, id)
				} else {
					rz, ok = engine.NewDownsize(d, id)
				}
				if !ok {
					return &search.Round{}, nil // single-size ladder: no size move exists
				}
				mv = rz
			}
			return &search.Round{Moves: []engine.Move{mv}}, nil
		},
		Verify: func() (bool, error) {
			var err error
			cand, candYield, candQ, err = evalObjective()
			if err != nil {
				return false, err
			}
			return cand <= cur || rng.Float64() < math.Exp((cur-cand)/temp), nil
		},
		Accepted: func(mv engine.Move, t *search.Tally) error {
			cur = cand
			if candYield >= o.YieldTarget && candQ < bestFeasible {
				bestFeasible = candQ
				bestState = d.Clone()
			}
			if t.Moves%256 == 0 {
				o.report(Progress{Optimizer: "anneal", Phase: "walk", Moves: t.Moves, Round: t.Rounds, LeakQNW: candQ, Yield: candYield})
			}
			return nil
		},
	}, o.Search)
	addTally(&res.Result, tally)
	if err != nil {
		return nil, err
	}
	if bestState != nil {
		d.CopyAssignmentFrom(bestState)
	}
	return finishStat(ctx, d, fam, o, res, start)
}
