package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "a", "bb", "ccc")
	tb.AddRow("x", 1, 2.5)
	tb.AddRow("longer", 12345.678, "str")
	tb.AddNote("hello %d", 7)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Title", "| a", "bb", "ccc", "longer", "12346", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// all table lines (starting with |) must have equal width
	w := -1
	for _, l := range lines {
		if !strings.HasPrefix(l, "|") {
			continue
		}
		if w == -1 {
			w = len(l)
		} else if len(l) != w {
			t.Errorf("ragged table line: %q", l)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("only")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short row dropped")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{12345.6, "12346"},
		{42.25, "42.2"},
		{1.5, "1.500"},
		{0.001, "1.00e-03"},
		{-2000, "-2000"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fig", "x", "y1", "y2")
	if err := s.Add(1, 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, 11, 21); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(3, 12); err == nil {
		t.Error("arity mismatch accepted")
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig", "y1", "y2", "21.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}
