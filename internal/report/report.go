// Package report renders the experiment tables and figure series as
// aligned ASCII, the output format of cmd/experiments and the bench
// harness.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v unless they are
// already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly: large values without
// decimals, small ones with enough precision to be meaningful.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case stats.EqZero(av):
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	sep := make([]string, len(t.Columns))
	head := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		head[i] = pad(c, widths[i])
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(head, " | "))
	fmt.Fprintf(&b, "|-%s-|\n", strings.Join(sep, "-|-"))
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range t.Columns {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named (x, y...) figure series rendered as a table plus a
// crude ASCII plot of the first y column.
type Series struct {
	Title  string
	XLabel string
	YLabel []string
	X      []float64
	Y      [][]float64 // Y[k][i] is series k at X[i]
}

// NewSeries creates a figure series container.
func NewSeries(title, xlabel string, ylabels ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabels, Y: make([][]float64, len(ylabels))}
}

// Add appends a sample point; ys must match the number of y labels.
func (s *Series) Add(x float64, ys ...float64) error {
	if len(ys) != len(s.YLabel) {
		return fmt.Errorf("report: Series.Add got %d values for %d series", len(ys), len(s.YLabel))
	}
	s.X = append(s.X, x)
	for k, y := range ys {
		s.Y[k] = append(s.Y[k], y)
	}
	return nil
}

// Render writes the series as an aligned table of points.
func (s *Series) Render(w io.Writer) error {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.YLabel...)...)
	for i, x := range s.X {
		cells := make([]interface{}, 0, 1+len(s.Y))
		cells = append(cells, x)
		for k := range s.Y {
			cells = append(cells, s.Y[k][i])
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}
