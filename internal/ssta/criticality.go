package ssta

import (
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/stats"
)

// Criticality returns, per node, the probability that the node lies on
// the critical path of a fabricated die — the standard SSTA diagnostic
// that replaces the deterministic notion of "the" critical path.
//
// It is computed from the canonical forms: a reverse-topological pass
// builds each node's downstream-remaining-delay form S_i (the
// statistical max over its fanout continuations, with flip-flop
// capture edges contributing their setup-shifted constant), the
// node's worst path-through form is T_i = A_i + S_i, and the
// criticality is P(T_i ≥ D) under the joint Gaussian of (T_i, D) with
// covariance taken through the shared global sensitivities. Private
// residuals of T_i and D are treated as independent, so the result is
// an approximation in exactly the same sense as Clark's max — tests
// bound it against Monte Carlo path tracing.
func (r *Result) Criticality(d *core.Design) ([]float64, error) {
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := d.Circuit.NumNodes()
	setup := d.Lib.P.DffSetupPs

	// Downstream remaining delay S_i, built on the reverse graph. For
	// an endpoint contribution: a PO adds 0; a DFF capture adds the
	// setup constant.
	remaining := make([]Canonical, n)
	has := make([]bool, n)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := d.Circuit.Gate(id)
		var acc Canonical
		accSet := false
		if d.IsOutput(id) {
			acc = NewCanonical(0, r.NumPC)
			accSet = true
		}
		for _, s := range g.Fanout {
			sg := d.Circuit.Gate(s)
			var cont Canonical
			if sg.Type == logic.Dff {
				cont = NewCanonical(setup, r.NumPC)
			} else if has[s] {
				cont = Add(remaining[s], GateDelayCanonical(d, s))
			} else {
				continue
			}
			if !accSet {
				acc = cont
				accSet = true
			} else {
				acc = Max(acc, cont)
			}
		}
		if accSet {
			remaining[id] = acc
			has[id] = true
		}
	}

	crit := make([]float64, n)
	dMean := r.Delay.Mean
	dVar := r.Delay.Variance()
	prob := func(t Canonical) float64 {
		// P(T − D ≥ 0) with Cov(T,D) through the globals.
		mu := t.Mean - dMean
		cov := Covariance(t, r.Delay)
		v := t.Variance() + dVar - 2*cov
		if v <= 1e-18 {
			if mu >= -1e-9 {
				return 1
			}
			return 0
		}
		return stats.NormalCDF(mu / math.Sqrt(v))
	}
	for _, g := range d.Circuit.Gates() {
		id := g.ID
		if has[id] {
			crit[id] = prob(Add(r.Arrival(id), remaining[id]))
		}
		if g.Type == logic.Dff {
			// A flip-flop is on the critical path in two roles: as a
			// launch point (handled above through its Q-side paths)
			// and as the capture endpoint of its D-pin path.
			capture := r.Arrival(g.Fanin[0]).Clone()
			capture.Mean += setup
			if c := prob(capture); c > crit[id] {
				crit[id] = c
			}
		}
	}
	return crit, nil
}
