package ssta_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/ssta"
	"repro/internal/tech"
)

func formsClose(t testing.TB, a, b ssta.Canonical, label string) {
	t.Helper()
	tol := 1e-9 * (1 + math.Abs(a.Mean))
	if math.Abs(a.Mean-b.Mean) > tol || math.Abs(a.Sigma()-b.Sigma()) > tol {
		t.Fatalf("%s: (%g,%g) vs (%g,%g)", label, a.Mean, a.Sigma(), b.Mean, b.Sigma())
	}
}

// applyRandomMove mutates one random gate and returns its ID.
func applyRandomMove(t testing.TB, d *core.Design, rng *rand.Rand) int {
	t.Helper()
	for {
		id := rng.Intn(d.Circuit.NumNodes())
		g := d.Circuit.Gate(id)
		if g.Type == logic.Input {
			continue
		}
		if rng.Intn(2) == 0 {
			next := tech.HighVth
			if d.Vth[id] == tech.HighVth {
				next = tech.LowVth
			}
			if err := d.SetVth(id, next); err != nil {
				t.Fatal(err)
			}
		} else {
			si := d.Lib.SizeIndex(d.Size[id])
			ni := si + 1
			if ni >= len(d.Lib.Sizes) || (si > 0 && rng.Intn(2) == 0) {
				ni = si - 1
			}
			if err := d.SetSize(id, d.Lib.Sizes[ni]); err != nil {
				t.Fatal(err)
			}
		}
		return id
	}
}

func TestIncrementalMatchesFullAnalysis(t *testing.T) {
	for _, name := range []string{"s432", "q344"} {
		d, err := fixture.Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := ssta.NewIncremental(d)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		for move := 0; move < 60; move++ {
			id := applyRandomMove(t, d, rng)
			inc.Update(id)
			full, err := ssta.Analyze(d)
			if err != nil {
				t.Fatal(err)
			}
			formsClose(t, inc.Result().Delay, full.Delay, name+" circuit delay")
			for _, g := range d.Circuit.Gates() {
				formsClose(t, inc.Result().Arrival(g.ID), full.Arrival(g.ID), name+" arrival")
			}
		}
	}
}

func TestIncrementalBatchUpdate(t *testing.T) {
	d, err := fixture.Suite("s880")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ssta.NewIncremental(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	var ids []int
	for i := 0; i < 15; i++ {
		ids = append(ids, applyRandomMove(t, d, rng))
	}
	inc.Update(ids...)
	full, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	formsClose(t, inc.Result().Delay, full.Delay, "batched circuit delay")
}

func TestIncrementalVisitsFewNodes(t *testing.T) {
	// The point of the engine: a single change near the outputs must
	// not re-time the whole circuit.
	d, err := fixture.Suite("s1908")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ssta.NewIncremental(d)
	if err != nil {
		t.Fatal(err)
	}
	// Change a primary-output driver (tiny fanout cone).
	out := d.Circuit.Outputs()[0]
	if err := d.SetVth(out, tech.HighVth); err != nil {
		t.Fatal(err)
	}
	visited := inc.Update(out)
	if visited >= d.Circuit.NumGates()/4 {
		t.Errorf("PO-driver change visited %d/%d nodes; pruning broken",
			visited, d.Circuit.NumGates())
	}
	// And the result is still right.
	full, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	formsClose(t, inc.Result().Delay, full.Delay, "post-prune delay")
}

func TestIncrementalNoOpUpdate(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ssta.NewIncremental(d)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Result().Delay
	// "Update" without an actual change: one visit (the seed), no
	// propagation beyond the unchanged form.
	id := d.Circuit.Outputs()[0]
	inc.Update(id)
	formsClose(t, inc.Result().Delay, before, "no-op update")
}
