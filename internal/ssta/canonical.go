// Package ssta implements block-based statistical static timing
// analysis in the canonical first-order delay model: every timing
// quantity is
//
//	X = Mean + Σₖ Sens[k]·Zₖ + Rand·R
//
// where Z is the shared global variation vector (die-to-die plus the
// spatial principal components from package variation) and R is a
// private standard normal. Sums add sensitivities exactly; the max of
// two canonical forms is re-Gaussianized with Clark's moments, with
// sensitivities blended by the tightness probability — the standard
// SSTA construction the paper's statistical optimizer runs on.
package ssta

import (
	"math"

	"repro/internal/stats"
)

// Canonical is a first-order Gaussian form over the global variation
// vector plus an independent residual.
type Canonical struct {
	Mean float64
	Sens []float64 // loadings on the globals Z
	Rand float64   // σ of the private residual (non-negative)
}

// NewCanonical returns a deterministic canonical form with the given
// number of global components.
func NewCanonical(mean float64, numPC int) Canonical {
	return Canonical{Mean: mean, Sens: make([]float64, numPC)}
}

// Variance returns the total variance.
func (c Canonical) Variance() float64 {
	v := c.Rand * c.Rand
	for _, s := range c.Sens {
		v += s * s
	}
	return v
}

// Sigma returns the standard deviation.
func (c Canonical) Sigma() float64 { return math.Sqrt(c.Variance()) }

// Normal returns the marginal distribution of the form.
func (c Canonical) Normal() stats.Normal { return stats.Normal{Mu: c.Mean, Sigma: c.Sigma()} }

// Clone deep-copies the form.
func (c Canonical) Clone() Canonical {
	return Canonical{Mean: c.Mean, Sens: append([]float64(nil), c.Sens...), Rand: c.Rand}
}

// Covariance returns Cov(a,b) under the model: global sensitivities
// are shared; private residuals of distinct forms are independent.
func Covariance(a, b Canonical) float64 {
	cov := 0.0
	for k := range a.Sens {
		cov += a.Sens[k] * b.Sens[k]
	}
	return cov
}

// Correlation returns the correlation coefficient of two forms (0 if
// either is deterministic).
func Correlation(a, b Canonical) float64 {
	va, vb := a.Variance(), b.Variance()
	if stats.EqZero(va) || stats.EqZero(vb) {
		return 0
	}
	rho := Covariance(a, b) / math.Sqrt(va*vb)
	if rho > 1 {
		rho = 1
	}
	if rho < -1 {
		rho = -1
	}
	return rho
}

// Add returns a+b, treating the private residuals as independent.
func Add(a, b Canonical) Canonical {
	out := Canonical{
		Mean: a.Mean + b.Mean,
		Sens: make([]float64, len(a.Sens)),
		Rand: math.Hypot(a.Rand, b.Rand),
	}
	for k := range a.Sens {
		out.Sens[k] = a.Sens[k] + b.Sens[k]
	}
	return out
}

// AddInPlace adds b into a (a must have the same PC dimension).
func AddInPlace(a *Canonical, b Canonical) {
	a.Mean += b.Mean
	for k := range a.Sens {
		a.Sens[k] += b.Sens[k]
	}
	a.Rand = math.Hypot(a.Rand, b.Rand)
}

// Max returns the canonical approximation of max(a,b): Clark's mean
// and variance, sensitivities blended by the tightness probability
// T = P(a ≥ b), and the private residual set to absorb whatever
// variance the blended sensitivities do not explain.
func Max(a, b Canonical) Canonical {
	sa, sb := a.Sigma(), b.Sigma()
	rho := Correlation(a, b)
	m := stats.ClarkMax(a.Mean, sa, b.Mean, sb, rho)
	out := Canonical{Mean: m.Mean, Sens: make([]float64, len(a.Sens))}
	t := m.Tightness
	explained := 0.0
	for k := range a.Sens {
		s := t*a.Sens[k] + (1-t)*b.Sens[k]
		out.Sens[k] = s
		explained += s * s
	}
	resid := m.Variance - explained
	if resid > 0 {
		out.Rand = math.Sqrt(resid)
	} else {
		// Blended sensitivities over-explain the Clark variance (can
		// happen when the inputs are nearly perfectly correlated);
		// rescale them to match it exactly.
		out.Rand = 0
		if explained > 0 {
			scale := math.Sqrt(m.Variance / explained)
			for k := range out.Sens {
				out.Sens[k] *= scale
			}
		}
	}
	return out
}

// MaxAll folds Max over a non-empty set of forms.
func MaxAll(forms []Canonical) Canonical {
	if len(forms) == 0 {
		panic("ssta: MaxAll of empty set")
	}
	acc := forms[0].Clone()
	for _, f := range forms[1:] {
		acc = Max(acc, f)
	}
	return acc
}
