// Package ssta implements block-based statistical static timing
// analysis in the canonical first-order delay model: every timing
// quantity is
//
//	X = Mean + Σₖ Sens[k]·Zₖ + Rand·R
//
// where Z is the shared global variation vector (die-to-die plus the
// spatial principal components from package variation) and R is a
// private standard normal. Sums add sensitivities exactly; the max of
// two canonical forms is re-Gaussianized with Clark's moments, with
// sensitivities blended by the tightness probability — the standard
// SSTA construction the paper's statistical optimizer runs on.
package ssta

import (
	"math"

	"repro/internal/stats"
)

// Canonical is a first-order Gaussian form over the global variation
// vector plus an independent residual.
type Canonical struct {
	Mean float64
	Sens []float64 // loadings on the globals Z
	Rand float64   // σ of the private residual (non-negative)
}

// NewCanonical returns a deterministic canonical form with the given
// number of global components.
func NewCanonical(mean float64, numPC int) Canonical {
	return Canonical{Mean: mean, Sens: make([]float64, numPC)}
}

// Variance returns the total variance.
func (c Canonical) Variance() float64 {
	v := c.Rand * c.Rand
	for _, s := range c.Sens {
		v += s * s
	}
	return v
}

// Sigma returns the standard deviation.
func (c Canonical) Sigma() float64 { return math.Sqrt(c.Variance()) }

// Normal returns the marginal distribution of the form.
func (c Canonical) Normal() stats.Normal { return stats.Normal{Mu: c.Mean, Sigma: c.Sigma()} }

// Clone deep-copies the form.
func (c Canonical) Clone() Canonical {
	return Canonical{Mean: c.Mean, Sens: append([]float64(nil), c.Sens...), Rand: c.Rand}
}

// Covariance returns Cov(a,b) under the model: global sensitivities
// are shared; private residuals of distinct forms are independent.
func Covariance(a, b Canonical) float64 {
	cov := 0.0
	bs := b.Sens[:len(a.Sens)] // one bounds proof for the whole dot
	for k, s := range a.Sens {
		cov += s * bs[k]
	}
	return cov
}

// Correlation returns the correlation coefficient of two forms (0 if
// either is deterministic).
func Correlation(a, b Canonical) float64 {
	va, vb := a.Variance(), b.Variance()
	if stats.EqZero(va) || stats.EqZero(vb) {
		return 0
	}
	rho := Covariance(a, b) / math.Sqrt(va*vb)
	if rho > 1 {
		rho = 1
	}
	if rho < -1 {
		rho = -1
	}
	return rho
}

// Add returns a+b, treating the private residuals as independent.
func Add(a, b Canonical) Canonical {
	out := Canonical{
		Mean: a.Mean + b.Mean,
		Sens: make([]float64, len(a.Sens)),
		Rand: math.Hypot(a.Rand, b.Rand),
	}
	for k := range a.Sens {
		out.Sens[k] = a.Sens[k] + b.Sens[k]
	}
	return out
}

// AddInPlace adds b into a (a must have the same PC dimension).
func AddInPlace(a *Canonical, b Canonical) {
	a.Mean += b.Mean
	for k := range a.Sens {
		a.Sens[k] += b.Sens[k]
	}
	a.Rand = math.Hypot(a.Rand, b.Rand)
}

// Max returns the canonical approximation of max(a,b): Clark's mean
// and variance, sensitivities blended by the tightness probability
// T = P(a ≥ b), and the private residual set to absorb whatever
// variance the blended sensitivities do not explain.
func Max(a, b Canonical) Canonical {
	out := Canonical{Sens: make([]float64, len(a.Sens))}
	maxInto(&out, a, b)
	return out
}

// maxInto computes Max(a,b) into dst, whose Sens must already have the
// right length. dst may alias a (each Sens slot is read before it is
// written), which is what lets the incremental timer fold a max chain
// in place with zero allocation. The arithmetic is expression-for-
// expression the historical Max — each input variance is just computed
// once instead of twice — so results are bitwise unchanged.
func maxInto(dst *Canonical, a, b Canonical) {
	va, vb := a.Variance(), b.Variance()
	sa, sb := math.Sqrt(va), math.Sqrt(vb)
	rho := 0.0
	if !stats.EqZero(va) && !stats.EqZero(vb) {
		rho = Covariance(a, b) / math.Sqrt(va*vb)
		if rho > 1 {
			rho = 1
		}
		if rho < -1 {
			rho = -1
		}
	}
	m := stats.ClarkMax(a.Mean, sa, b.Mean, sb, rho)
	t := m.Tightness
	// Hoisting 1−t (the same pure value every iteration) and proving
	// the three slices congruent up front changes no result bits; it
	// only removes per-element bounds checks from the blend loop.
	omt := 1 - t
	bs := b.Sens[:len(a.Sens)]
	ds := dst.Sens[:len(a.Sens)]
	explained := 0.0
	for k, av := range a.Sens {
		s := t*av + omt*bs[k]
		ds[k] = s
		explained += s * s
	}
	dst.Mean = m.Mean
	resid := m.Variance - explained
	if resid > 0 {
		dst.Rand = math.Sqrt(resid)
	} else {
		// Blended sensitivities over-explain the Clark variance (can
		// happen when the inputs are nearly perfectly correlated);
		// rescale them to match it exactly.
		dst.Rand = 0
		if explained > 0 {
			scale := math.Sqrt(m.Variance / explained)
			for k := range dst.Sens {
				dst.Sens[k] *= scale
			}
		}
	}
}

// copyInto overwrites dst with a value copy of src; dst.Sens must
// already have the right length.
func copyInto(dst *Canonical, src Canonical) {
	dst.Mean = src.Mean
	copy(dst.Sens, src.Sens)
	dst.Rand = src.Rand
}

// MaxAll folds Max over a non-empty set of forms.
func MaxAll(forms []Canonical) Canonical {
	if len(forms) == 0 {
		panic("ssta: MaxAll of empty set")
	}
	acc := forms[0].Clone()
	for _, f := range forms[1:] {
		acc = Max(acc, f)
	}
	return acc
}
