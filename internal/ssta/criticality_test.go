package ssta_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/ssta"
	"repro/internal/sta"
	"repro/internal/variation"
)

func critOf(t testing.TB, d *core.Design) []float64 {
	t.Helper()
	r, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := r.Criticality(d)
	if err != nil {
		t.Fatal(err)
	}
	return crit
}

func TestCriticalityBounds(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	crit := critOf(t, d)
	for _, g := range d.Circuit.Gates() {
		c := crit[g.ID]
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("criticality(%s) = %g", g.Name, c)
		}
	}
}

func TestCriticalityHighOnNominalCriticalPath(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	crit := critOf(t, d)
	sr, err := sta.Analyze(d, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// The nominal critical path's gates must be far more critical than
	// the average gate.
	sum, n := 0.0, 0
	onPath := map[int]bool{}
	for _, id := range sr.CriticalPath(d) {
		onPath[id] = true
		sum += crit[id]
		n++
	}
	pathAvg := sum / float64(n)
	var offSum float64
	var offN int
	for _, g := range d.Circuit.Gates() {
		if g.Type != logic.Input && !onPath[g.ID] {
			offSum += crit[g.ID]
			offN++
		}
	}
	offAvg := offSum / float64(offN)
	if pathAvg < 3*offAvg {
		t.Errorf("critical-path avg criticality %g not well above off-path %g", pathAvg, offAvg)
	}
	if pathAvg < 0.15 {
		t.Errorf("critical-path avg criticality %g suspiciously low", pathAvg)
	}
}

func TestCriticalityMatchesMonteCarloPathTracing(t *testing.T) {
	// Golden check: sample dies, run per-die STA, trace the per-die
	// critical path, and count how often each gate appears on it; the
	// analytic criticality must track these frequencies.
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	crit := critOf(t, d)
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	const samples = 800
	counts := make([]float64, d.Circuit.NumNodes())
	delays := make([]float64, d.Circuit.NumNodes())
	vm := d.Var
	for s := 0; s < samples; s++ {
		rng := rand.New(rand.NewSource(int64(s)*7919 + 3))
		die := vm.SampleGlobals(rng)
		for _, g := range d.Circuit.Gates() {
			if g.Type == logic.Input {
				continue
			}
			dL := vm.DeltaL(die, g.X, g.Y, rng.NormFloat64())
			dV := vm.DeltaVth(rng.NormFloat64())
			delays[g.ID] = d.GateDelayWith(g.ID, dL, dV)
		}
		r, err := sta.AnalyzeDelays(d.Circuit, delays, 1e6, d.Lib.P.DffSetupPs)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range r.CriticalPath(d) {
			counts[id]++
		}
		_ = order
	}
	// Compare on gates with meaningful criticality. Tolerances are
	// loose: the analytic number approximates P(on critical path)
	// under independence assumptions.
	for _, g := range d.Circuit.Gates() {
		if g.Type == logic.Input {
			continue
		}
		mc := counts[g.ID] / samples
		an := crit[g.ID]
		if mc > 0.5 && an < 0.2 {
			t.Errorf("%s: MC criticality %.2f but analytic %.2f", g.Name, mc, an)
		}
		if mc < 0.02 && an > 0.5 {
			t.Errorf("%s: MC criticality %.2f but analytic %.2f", g.Name, mc, an)
		}
	}
}

func TestCriticalityDeterministicLimit(t *testing.T) {
	// With variation switched off, criticality degenerates to the
	// 0/1 indicator of lying on a critical path.
	d, err := fixture.Suite("s499")
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Var.Cfg
	cfg.SigmaLNm = 0
	cfg.SigmaVthIndV = 0
	vmZero, err := variation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Var = vmZero
	crit := critOf(t, d)
	sr, err := sta.Analyze(d, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sr.CriticalPath(d) {
		if d.Circuit.Gate(id).Type == logic.Input {
			continue
		}
		if crit[id] < 0.999 {
			t.Errorf("deterministic limit: path node %d criticality %g, want 1", id, crit[id])
		}
	}
}
