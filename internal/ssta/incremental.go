package ssta

import (
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Instrumentation: incremental-vs-full retiming volume (see
// internal/obs and DESIGN.md §"Service layer"). The full-analysis
// counter lives in Analyze (ssta.go); together they expose the
// engine's cone-pruning win as a ratio any scraper can graph.
var (
	metIncUpdates = obs.Default.Counter("statleak_ssta_incremental_updates_total",
		"incremental (cone-local) retimings performed")
	metIncNodes = obs.Default.Counter("statleak_ssta_incremental_nodes_retimed_total",
		"nodes re-evaluated across all incremental retimings")
)

// Incremental maintains a statistical timing view of a design and
// updates it after gate changes by recomputing only the affected
// fanout cones — the engine style production timers (and optimizer
// inner loops) use instead of re-running block-based SSTA from
// scratch. Equivalence with the full analysis is exact (same
// canonical operations in the same topological order); only
// propagation is pruned, and only where an arrival form is bitwise
// unchanged within tolerance.
//
// The arrival state lives structure-of-arrays in Result (three flat
// float slices), and Update folds each node's max chain in place
// through per-timer scratch forms, so a steady-state retiming makes
// no allocations beyond journal growth.
type Incremental struct {
	d        *core.Design
	order    []int
	pos      []int  // topo position per node
	endpoint []bool // rows the circuit-delay fold reads (POs + DFF data pins)
	res      *Result

	// Scratch state reused across Updates: the candidate form and the
	// gate-delay form of the node being re-evaluated, the endpoint
	// fold accumulator, and the heap's membership set + id storage.
	next, gd, fold Canonical
	hIDs           []int
	hIn            []bool

	// loadPs memoizes Design.Load per node — a pure function of the
	// fanout sinks' sizes, so entries stay bitwise exact until a sink
	// changes; Update invalidates the fanins of every changed gate
	// (the only loads a move can perturb) before re-timing.
	loadPs []float64
	loadOK []bool

	journal *incJournal // non-nil while a scoring round records undo state
	spare   *incJournal // retired journal kept to reuse its allocations
}

// NewIncremental runs one full analysis and wraps it for updates.
func NewIncremental(d *core.Design) (*Incremental, error) {
	res, err := Analyze(d)
	if err != nil {
		return nil, err
	}
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, d.Circuit.NumNodes())
	for i, id := range order {
		pos[id] = i
	}
	endpoint := make([]bool, d.Circuit.NumNodes())
	for _, o := range d.Circuit.Outputs() {
		endpoint[o] = true
	}
	for _, f := range d.Circuit.Dffs() {
		endpoint[d.Circuit.Gate(f).Fanin[0]] = true
	}
	inc := &Incremental{d: d, order: order, pos: pos, endpoint: endpoint, res: res}
	inc.initScratch()
	return inc, nil
}

func (inc *Incremental) initScratch() {
	k := inc.res.NumPC
	inc.next = NewCanonical(0, k)
	inc.gd = NewCanonical(0, k)
	inc.fold = NewCanonical(0, k)
	inc.hIn = make([]bool, len(inc.res.mean))
	inc.loadPs = make([]float64, len(inc.res.mean))
	inc.loadOK = make([]bool, len(inc.res.mean))
}

// loadOf returns the cached fanout load of node id, computing it on a
// miss. The cached value is the same pure function Design.Load would
// return, so reuse is bitwise neutral.
func (inc *Incremental) loadOf(id int) float64 {
	if !inc.loadOK[id] {
		inc.loadPs[id] = inc.d.Load(id)
		inc.loadOK[id] = true
	}
	return inc.loadPs[id]
}

// Result returns the current timing view. The caller must treat it as
// read-only; it is refreshed in place by Update.
func (inc *Incremental) Result() *Result { return inc.res }

// CloneFor returns an independent copy of the timing state bound to d,
// which must be a clone of the original design in the same assignment
// state (no re-analysis is performed). The topological order is shared
// (it depends only on the circuit); the arrival state is three bulk
// slice copies thanks to the flat layout, so the clone can Update
// without disturbing the original — this is what lets parallel move
// scorers (and the speculative round pipeline) each carry their own
// timer.
func (inc *Incremental) CloneFor(d *core.Design) *Incremental {
	res := &Result{
		Delay: inc.res.Delay.Clone(),
		NumPC: inc.res.NumPC,
		mean:  append([]float64(nil), inc.res.mean...),
		rand:  append([]float64(nil), inc.res.rand...),
		sens:  append([]float64(nil), inc.res.sens...),
	}
	c := &Incremental{d: d, order: inc.order, pos: inc.pos, endpoint: inc.endpoint, res: res}
	c.initScratch()
	return c
}

// posHeap is a min-heap of node IDs keyed by topological position. Its
// id storage and membership set are owned by the timer and reused
// across Updates; membership self-clears because every pushed id is
// popped before Update returns. The sift-up/sift-down loops are the
// container/heap algorithm specialized to ints (identical swap and
// comparison order, so the pop sequence — and with it the retiming
// order — is exactly what the interface-based heap produced, without
// boxing every id into an interface value).
type posHeap struct {
	ids []int
	pos []int
	in  []bool
}

func (h *posHeap) less(i, j int) bool { return h.pos[h.ids[i]] < h.pos[h.ids[j]] }

func (h *posHeap) add(id int) {
	if h.in[id] {
		return
	}
	h.in[id] = true
	h.ids = append(h.ids, id)
	j := len(h.ids) - 1
	for {
		i := (j - 1) / 2
		if i == j || !h.less(j, i) {
			break
		}
		h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
		j = i
	}
}

func (h *posHeap) pop() int {
	n := len(h.ids) - 1
	h.ids[0], h.ids[n] = h.ids[n], h.ids[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.less(j2, j) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
		i = j
	}
	x := h.ids[n]
	h.ids = h.ids[:n]
	return x
}

// Update re-times the design after the given gates changed (Vth or
// size). A size change alters the gate's own delay and its drivers'
// loads, so drivers are re-seeded too; passing the changed gate alone
// is always sufficient. Returns the number of nodes re-evaluated.
func (inc *Incremental) Update(changed ...int) int {
	d := inc.d
	c := d.Circuit
	h := &posHeap{ids: inc.hIDs[:0], pos: inc.pos, in: inc.hIn}
	for _, id := range changed {
		h.add(id)
		// Drivers see a different load if this gate's size changed;
		// re-seeding them (and dropping their cached loads)
		// unconditionally is cheap and always safe.
		for _, f := range c.Gate(id).Fanin {
			inc.loadOK[f] = false
			if c.Gate(f).Type != logic.Input {
				h.add(f)
			}
		}
	}
	visited := 0
	foldStale := false
	next := &inc.next
	for len(h.ids) > 0 {
		id := h.pop()
		h.in[id] = false
		g := c.Gate(id)
		if g.Type == logic.Input {
			continue
		}
		visited++
		if g.Type == logic.Dff {
			gateDelayIntoAt(d, id, inc.loadOf(id), next)
		} else {
			copyInto(next, inc.res.Arrival(g.Fanin[0]))
			for _, f := range g.Fanin[1:] {
				maxInto(next, *next, inc.res.Arrival(f))
			}
			gateDelayIntoAt(d, id, inc.loadOf(id), &inc.gd)
			next.Mean += inc.gd.Mean
			gs := inc.gd.Sens[:len(next.Sens)]
			for k := range next.Sens {
				next.Sens[k] += gs[k]
			}
			next.Rand = math.Hypot(next.Rand, inc.gd.Rand)
		}
		if canonicalEqual(*next, inc.res.Arrival(id)) {
			continue // cone converged: nothing downstream can change
		}
		if inc.journal != nil {
			inc.journal.note(inc, id)
		}
		inc.res.setArrival(id, *next)
		if inc.endpoint[id] {
			foldStale = true
		}
		for _, s := range g.Fanout {
			if c.Gate(s).Type != logic.Dff {
				h.add(s)
			}
			// DFF sinks have no combinational dependence on their data
			// pin; the endpoint fold below picks up the change.
		}
	}
	inc.hIDs = h.ids[:0]
	// Delay is a pure function of the endpoint rows (each written at
	// most once per update, in topo order), so when none of them changed
	// the refold would reproduce the current value bitwise — skip it.
	if foldStale {
		inc.refold()
	}
	metIncUpdates.Inc()
	metIncNodes.Add(uint64(visited))
	return visited
}

// refold recomputes the circuit-delay form from the endpoint
// arrivals. The fold runs in place through the scratch accumulator;
// only the final Delay value is freshly allocated, preserving the
// invariant that Result.Delay is safe to hold by value across updates
// (the journal's delay snapshot depends on it).
func (inc *Incremental) refold() {
	d := inc.d
	setup := d.Lib.P.DffSetupPs
	acc := &inc.fold
	set := false
	for _, o := range d.Circuit.Outputs() {
		if !set {
			copyInto(acc, inc.res.Arrival(o))
			set = true
		} else {
			maxInto(acc, *acc, inc.res.Arrival(o))
		}
	}
	for _, f := range d.Circuit.Dffs() {
		capture := inc.res.Arrival(d.Circuit.Gate(f).Fanin[0])
		captureMean := capture.Mean + setup
		if !set {
			copyInto(acc, capture)
			acc.Mean = captureMean
			set = true
		} else {
			maxInto(acc, *acc, Canonical{Mean: captureMean, Sens: capture.Sens, Rand: capture.Rand})
		}
	}
	if !set {
		inc.res.Delay = Canonical{}
		return
	}
	inc.res.Delay = acc.Clone()
}

// canonicalEqual compares two forms within floating tolerance.
func canonicalEqual(a, b Canonical) bool {
	const tol = 1e-12
	if !close(a.Mean, b.Mean, tol) || !close(a.Rand, b.Rand, tol) {
		return false
	}
	for k := range a.Sens {
		if !close(a.Sens[k], b.Sens[k], tol) {
			return false
		}
	}
	return true
}

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
