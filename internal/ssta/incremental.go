package ssta

import (
	"container/heap"
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Instrumentation: incremental-vs-full retiming volume (see
// internal/obs and DESIGN.md §"Service layer"). The full-analysis
// counter lives in Analyze (ssta.go); together they expose the
// engine's cone-pruning win as a ratio any scraper can graph.
var (
	metIncUpdates = obs.Default.Counter("statleak_ssta_incremental_updates_total",
		"incremental (cone-local) retimings performed")
	metIncNodes = obs.Default.Counter("statleak_ssta_incremental_nodes_retimed_total",
		"nodes re-evaluated across all incremental retimings")
)

// Incremental maintains a statistical timing view of a design and
// updates it after gate changes by recomputing only the affected
// fanout cones — the engine style production timers (and optimizer
// inner loops) use instead of re-running block-based SSTA from
// scratch. Equivalence with the full analysis is exact (same
// canonical operations in the same topological order); only
// propagation is pruned, and only where an arrival form is bitwise
// unchanged within tolerance.
type Incremental struct {
	d     *core.Design
	order []int
	pos   []int // topo position per node
	res   *Result

	journal *incJournal // non-nil while a scoring round records undo state
	spare   *incJournal // retired journal kept to reuse its allocations
}

// NewIncremental runs one full analysis and wraps it for updates.
func NewIncremental(d *core.Design) (*Incremental, error) {
	res, err := Analyze(d)
	if err != nil {
		return nil, err
	}
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, d.Circuit.NumNodes())
	for i, id := range order {
		pos[id] = i
	}
	return &Incremental{d: d, order: order, pos: pos, res: res}, nil
}

// Result returns the current timing view. The caller must treat it as
// read-only; it is refreshed in place by Update.
func (inc *Incremental) Result() *Result { return inc.res }

// CloneFor returns an independent copy of the timing state bound to d,
// which must be a clone of the original design in the same assignment
// state (no re-analysis is performed). The topological order is shared
// (it depends only on the circuit); the arrival forms are deep-copied
// so the clone can Update without disturbing the original — this is
// what lets parallel move scorers each carry their own timer.
func (inc *Incremental) CloneFor(d *core.Design) *Incremental {
	res := &Result{
		Arrivals: make([]Canonical, len(inc.res.Arrivals)),
		Delay:    inc.res.Delay.Clone(),
		NumPC:    inc.res.NumPC,
	}
	for i := range inc.res.Arrivals {
		res.Arrivals[i] = inc.res.Arrivals[i].Clone()
	}
	return &Incremental{d: d, order: inc.order, pos: inc.pos, res: res}
}

// posHeap is a min-heap of node IDs keyed by topological position.
type posHeap struct {
	ids []int
	pos []int
	in  map[int]bool
}

func (h *posHeap) Len() int           { return len(h.ids) }
func (h *posHeap) Less(i, j int) bool { return h.pos[h.ids[i]] < h.pos[h.ids[j]] }
func (h *posHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *posHeap) Push(x interface{}) { h.ids = append(h.ids, x.(int)) }
func (h *posHeap) Pop() interface{} {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}

func (h *posHeap) add(id int) {
	if !h.in[id] {
		h.in[id] = true
		heap.Push(h, id)
	}
}

// Update re-times the design after the given gates changed (Vth or
// size). A size change alters the gate's own delay and its drivers'
// loads, so drivers are re-seeded too; passing the changed gate alone
// is always sufficient. Returns the number of nodes re-evaluated.
func (inc *Incremental) Update(changed ...int) int {
	d := inc.d
	c := d.Circuit
	h := &posHeap{pos: inc.pos, in: make(map[int]bool)}
	for _, id := range changed {
		h.add(id)
		// Drivers see a different load if this gate's size changed;
		// re-seeding them unconditionally is cheap and always safe.
		for _, f := range c.Gate(id).Fanin {
			if c.Gate(f).Type != logic.Input {
				h.add(f)
			}
		}
	}
	visited := 0
	for h.Len() > 0 {
		id := heap.Pop(h).(int)
		delete(h.in, id)
		g := c.Gate(id)
		if g.Type == logic.Input {
			continue
		}
		visited++
		var next Canonical
		if g.Type == logic.Dff {
			next = GateDelayCanonical(d, id)
		} else {
			in := inc.res.Arrivals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				in = Max(in, inc.res.Arrivals[f])
			}
			next = Add(in, GateDelayCanonical(d, id))
		}
		if canonicalEqual(next, inc.res.Arrivals[id]) {
			continue // cone converged: nothing downstream can change
		}
		if inc.journal != nil {
			inc.journal.note(inc, id)
		}
		inc.res.Arrivals[id] = next
		for _, s := range g.Fanout {
			if c.Gate(s).Type != logic.Dff {
				h.add(s)
			}
			// DFF sinks have no combinational dependence on their data
			// pin; the endpoint fold below picks up the change.
		}
	}
	inc.refold()
	metIncUpdates.Inc()
	metIncNodes.Add(uint64(visited))
	return visited
}

// refold recomputes the circuit-delay form from the endpoint
// arrivals.
func (inc *Incremental) refold() {
	d := inc.d
	setup := d.Lib.P.DffSetupPs
	var acc Canonical
	set := false
	for _, o := range d.Circuit.Outputs() {
		if !set {
			acc = inc.res.Arrivals[o].Clone()
			set = true
		} else {
			acc = Max(acc, inc.res.Arrivals[o])
		}
	}
	for _, f := range d.Circuit.Dffs() {
		capture := inc.res.Arrivals[d.Circuit.Gate(f).Fanin[0]].Clone()
		capture.Mean += setup
		if !set {
			acc = capture
			set = true
		} else {
			acc = Max(acc, capture)
		}
	}
	inc.res.Delay = acc
}

// canonicalEqual compares two forms within floating tolerance.
func canonicalEqual(a, b Canonical) bool {
	const tol = 1e-12
	if !close(a.Mean, b.Mean, tol) || !close(a.Rand, b.Rand, tol) {
		return false
	}
	for k := range a.Sens {
		if !close(a.Sens[k], b.Sens[k], tol) {
			return false
		}
	}
	return true
}

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}
