package ssta

import (
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Result is a full statistical timing analysis of a design.
type Result struct {
	// Arrivals[i] is the canonical arrival-time form at the output of
	// node i.
	Arrivals []Canonical
	// Delay is the canonical circuit delay: the statistical max over
	// the primary-output arrivals.
	Delay Canonical
	// NumPC is the dimension of the global variation vector.
	NumPC int
}

// GateDelayCanonical builds the canonical delay form of one gate: the
// nominal delay as mean, the ΔLeff sensitivity projected onto the
// gate's spatial loading vector as global sensitivities, and the
// independent ΔLeff and ΔVth contributions folded into the private
// residual.
func GateDelayCanonical(d *core.Design, id int) Canonical {
	vm := d.Var
	g := d.Circuit.Gate(id)
	c := NewCanonical(0, vm.NumPC)
	if g.Type == logic.Input {
		return c
	}
	c.Mean = d.GateDelay(id)
	dPerNm, dPerV := d.GateDelayDerivs(id)
	loads := vm.Loads(g.X, g.Y)
	for k, a := range loads {
		c.Sens[k] = dPerNm * a
	}
	indL := dPerNm * vm.SigmaIndNm()
	indV := dPerV * vm.SigmaVthInd()
	c.Rand = math.Sqrt(indL*indL + indV*indV)
	return c
}

// metFull counts full block-based analyses; its ratio to
// statleak_ssta_incremental_updates_total is the incremental timer's
// amortization factor.
var metFull = obs.Default.Counter("statleak_ssta_full_analyses_total",
	"full block-based SSTA runs (initial builds and periodic refreshes)")

// Analyze runs block-based SSTA over the design and returns the
// canonical arrival forms and the circuit-delay form.
func Analyze(d *core.Design) (*Result, error) {
	metFull.Inc()
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := d.Circuit.NumNodes()
	numPC := d.Var.NumPC
	r := &Result{Arrivals: make([]Canonical, n), NumPC: numPC}
	for _, id := range order {
		g := d.Circuit.Gate(id)
		switch g.Type {
		case logic.Input:
			r.Arrivals[id] = NewCanonical(0, numPC)
			continue
		case logic.Dff:
			// Launch point: the clock edge plus the (variational)
			// clock-to-Q delay; the data-pin arrival constrains the
			// endpoint fold below, not this node.
			r.Arrivals[id] = GateDelayCanonical(d, id)
			continue
		}
		var in Canonical
		switch len(g.Fanin) {
		case 1:
			in = r.Arrivals[g.Fanin[0]]
		default:
			in = r.Arrivals[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				in = Max(in, r.Arrivals[f])
			}
		}
		r.Arrivals[id] = Add(in, GateDelayCanonical(d, id))
	}
	// Circuit delay: statistical max over all timing endpoints —
	// primary outputs, and flip-flop data pins shifted by the setup
	// time (the minimum clock period for sequential circuits).
	setup := d.Lib.P.DffSetupPs
	var endpoints []Canonical
	for _, o := range d.Circuit.Outputs() {
		endpoints = append(endpoints, r.Arrivals[o])
	}
	for _, f := range d.Circuit.Dffs() {
		capture := r.Arrivals[d.Circuit.Gate(f).Fanin[0]].Clone()
		capture.Mean += setup
		endpoints = append(endpoints, capture)
	}
	r.Delay = MaxAll(endpoints)
	return r, nil
}

// Yield returns the timing yield P(delay ≤ tmax) under the Gaussian
// circuit-delay approximation.
func (r *Result) Yield(tmax float64) float64 {
	return r.Delay.Normal().CDF(tmax)
}

// Quantile returns the delay value not exceeded with probability p.
func (r *Result) Quantile(p float64) float64 {
	return r.Delay.Normal().Quantile(p)
}

// YieldConstraintDelay returns the Tmax that would achieve the target
// yield: the eta-quantile of the delay distribution.
func (r *Result) YieldConstraintDelay(eta float64) float64 {
	return r.Quantile(eta)
}

// StatisticalSlack returns, per node, an approximate statistical slack
// against constraint tmax at yield target eta: how much the node's
// mean delay could grow before the eta-quantile of the circuit delay
// would (approximately) violate tmax.
//
// It treats the circuit's delay variance as a global margin: the mean
// timing graph is given the effective budget
//
//	T_eff = tmax − κ·σ(D),  κ = Φ⁻¹(eta)
//
// and an ordinary mean-delay required-time pass computes slacks
// against it. Accumulating κσ per gate along paths instead would
// overcount the variance by ~√depth (sigmas add in RSS, not
// linearly), starving the optimizer of slack; treating σ(D) as a
// slowly varying global is the standard fix. This is a ranking
// signal — the hard feasibility check remains Yield(tmax) ≥ eta with
// rollback.
func (r *Result) StatisticalSlack(d *core.Design, tmax, eta float64) ([]float64, error) {
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	kappa := stats.NormalQuantile(eta)
	tEff := tmax - kappa*r.Delay.Sigma()
	n := d.Circuit.NumNodes()
	req := make([]float64, n)
	for i := range req {
		req[i] = inf
	}
	for _, o := range d.Circuit.Outputs() {
		if tEff < req[o] {
			req[o] = tEff
		}
	}
	// Backward pass with mean gate delays (the canonical means include
	// the Clark max bias of the forward arrivals, which keeps forward
	// and backward views consistent).
	gd := make([]float64, n)
	for _, id := range order {
		if d.Circuit.Gate(id).Type != logic.Input {
			gd[id] = d.GateDelay(id)
		}
	}
	setup := d.Lib.P.DffSetupPs
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := d.Circuit.Gate(id)
		rq := req[id]
		for _, s := range g.Fanout {
			var v float64
			if d.Circuit.Gate(s).Type == logic.Dff {
				v = tEff - setup // capture at the D pin
			} else {
				v = req[s] - gd[s]
			}
			if v < rq {
				rq = v
			}
		}
		req[id] = rq
	}
	slack := make([]float64, n)
	for i := range slack {
		slack[i] = req[i] - r.Arrivals[i].Mean
	}
	return slack, nil
}

var inf = 1e300
