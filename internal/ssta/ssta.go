package ssta

import (
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Result is a full statistical timing analysis of a design.
//
// Arrival forms are stored structure-of-arrays — three parallel flat
// float slices indexed by node ID instead of a []Canonical — so the
// incremental timer's journal replay and the scoring workers' resync
// walk contiguous memory and clone in three bulk copies. Use
// Arrival(id) for the canonical view of one node.
type Result struct {
	// Delay is the canonical circuit delay: the statistical max over
	// the primary-output arrivals. Its Sens slice is freshly allocated
	// on every refold, so holding the value across updates is safe.
	Delay Canonical
	// NumPC is the dimension of the global variation vector.
	NumPC int

	mean []float64 // per-node arrival mean, indexed by node ID
	rand []float64 // per-node private residual σ
	sens []float64 // n×NumPC row-major global sensitivities
}

func newResult(n, numPC int) *Result {
	return &Result{
		NumPC: numPC,
		mean:  make([]float64, n),
		rand:  make([]float64, n),
		sens:  make([]float64, n*numPC),
	}
}

// NumNodes returns the number of nodes the result covers.
func (r *Result) NumNodes() int { return len(r.mean) }

// Arrival returns the canonical arrival-time form at the output of
// node id. The returned form's Sens aliases the result's backing
// storage: treat it as read-only, and re-fetch it after any update
// (Clone it to hold it across one).
func (r *Result) Arrival(id int) Canonical {
	k := r.NumPC
	return Canonical{
		Mean: r.mean[id],
		Sens: r.sens[id*k : (id+1)*k : (id+1)*k],
		Rand: r.rand[id],
	}
}

// ArrivalMean returns just the mean arrival time of node id — the
// cheap accessor the slack and critical-path walks use.
func (r *Result) ArrivalMean(id int) float64 { return r.mean[id] }

// setArrival copies c into node id's row.
func (r *Result) setArrival(id int, c Canonical) {
	k := r.NumPC
	r.mean[id] = c.Mean
	r.rand[id] = c.Rand
	copy(r.sens[id*k:(id+1)*k], c.Sens)
}

// GateDelayCanonical builds the canonical delay form of one gate: the
// nominal delay as mean, the ΔLeff sensitivity projected onto the
// gate's spatial loading vector as global sensitivities, and the
// independent ΔLeff and ΔVth contributions folded into the private
// residual.
func GateDelayCanonical(d *core.Design, id int) Canonical {
	c := NewCanonical(0, d.Var.NumPC)
	gateDelayInto(d, id, &c)
	return c
}

// gateDelayInto computes the gate-delay form into c, whose Sens must
// already have length NumPC — the allocation-free variant the
// incremental timer's hot loop uses.
func gateDelayInto(d *core.Design, id int, c *Canonical) {
	g := d.Circuit.Gate(id)
	if g.Type == logic.Input {
		c.Mean, c.Rand = 0, 0
		for k := range c.Sens {
			c.Sens[k] = 0
		}
		return
	}
	gateDelayIntoAt(d, id, d.Load(id), c)
}

// gateDelayIntoAt is gateDelayInto at a caller-supplied load (the
// incremental timer caches loads across updates); id must not be a
// primary input.
func gateDelayIntoAt(d *core.Design, id int, load float64, c *Canonical) {
	vm := d.Var
	g := d.Circuit.Gate(id)
	mean, dPerNm, dPerV := d.GateDelayAndDerivsAt(id, load)
	c.Mean = mean
	loads := vm.Loads(g.X, g.Y)
	for k, a := range loads {
		c.Sens[k] = dPerNm * a
	}
	indL := dPerNm * vm.SigmaIndNm()
	indV := dPerV * vm.SigmaVthInd()
	c.Rand = math.Sqrt(indL*indL + indV*indV)
}

// metFull counts full block-based analyses; its ratio to
// statleak_ssta_incremental_updates_total is the incremental timer's
// amortization factor.
var metFull = obs.Default.Counter("statleak_ssta_full_analyses_total",
	"full block-based SSTA runs (initial builds and periodic refreshes)")

// Analyze runs block-based SSTA over the design and returns the
// canonical arrival forms and the circuit-delay form.
func Analyze(d *core.Design) (*Result, error) {
	metFull.Inc()
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := d.Circuit.NumNodes()
	numPC := d.Var.NumPC
	r := newResult(n, numPC)
	for _, id := range order {
		g := d.Circuit.Gate(id)
		switch g.Type {
		case logic.Input:
			// The row is already zero — a deterministic t=0 arrival.
			continue
		case logic.Dff:
			// Launch point: the clock edge plus the (variational)
			// clock-to-Q delay; the data-pin arrival constrains the
			// endpoint fold below, not this node.
			r.setArrival(id, GateDelayCanonical(d, id))
			continue
		}
		var in Canonical
		switch len(g.Fanin) {
		case 1:
			in = r.Arrival(g.Fanin[0])
		default:
			in = r.Arrival(g.Fanin[0])
			for _, f := range g.Fanin[1:] {
				in = Max(in, r.Arrival(f))
			}
		}
		r.setArrival(id, Add(in, GateDelayCanonical(d, id)))
	}
	// Circuit delay: statistical max over all timing endpoints —
	// primary outputs, and flip-flop data pins shifted by the setup
	// time (the minimum clock period for sequential circuits).
	setup := d.Lib.P.DffSetupPs
	var endpoints []Canonical
	for _, o := range d.Circuit.Outputs() {
		endpoints = append(endpoints, r.Arrival(o))
	}
	for _, f := range d.Circuit.Dffs() {
		capture := r.Arrival(d.Circuit.Gate(f).Fanin[0]).Clone()
		capture.Mean += setup
		endpoints = append(endpoints, capture)
	}
	r.Delay = MaxAll(endpoints)
	return r, nil
}

// Yield returns the timing yield P(delay ≤ tmax) under the Gaussian
// circuit-delay approximation.
func (r *Result) Yield(tmax float64) float64 {
	return r.Delay.Normal().CDF(tmax)
}

// Quantile returns the delay value not exceeded with probability p.
func (r *Result) Quantile(p float64) float64 {
	return r.Delay.Normal().Quantile(p)
}

// YieldConstraintDelay returns the Tmax that would achieve the target
// yield: the eta-quantile of the delay distribution.
func (r *Result) YieldConstraintDelay(eta float64) float64 {
	return r.Quantile(eta)
}

// StatisticalSlack returns, per node, an approximate statistical slack
// against constraint tmax at yield target eta: how much the node's
// mean delay could grow before the eta-quantile of the circuit delay
// would (approximately) violate tmax.
//
// It treats the circuit's delay variance as a global margin: the mean
// timing graph is given the effective budget
//
//	T_eff = tmax − κ·σ(D),  κ = Φ⁻¹(eta)
//
// and an ordinary mean-delay required-time pass computes slacks
// against it. Accumulating κσ per gate along paths instead would
// overcount the variance by ~√depth (sigmas add in RSS, not
// linearly), starving the optimizer of slack; treating σ(D) as a
// slowly varying global is the standard fix. This is a ranking
// signal — the hard feasibility check remains Yield(tmax) ≥ eta with
// rollback.
func (r *Result) StatisticalSlack(d *core.Design, tmax, eta float64) ([]float64, error) {
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		return nil, err
	}
	kappa := stats.NormalQuantile(eta)
	tEff := tmax - kappa*r.Delay.Sigma()
	n := d.Circuit.NumNodes()
	req := make([]float64, n)
	for i := range req {
		req[i] = inf
	}
	for _, o := range d.Circuit.Outputs() {
		if tEff < req[o] {
			req[o] = tEff
		}
	}
	// Backward pass with mean gate delays (the canonical means include
	// the Clark max bias of the forward arrivals, which keeps forward
	// and backward views consistent).
	gd := make([]float64, n)
	for _, id := range order {
		if d.Circuit.Gate(id).Type != logic.Input {
			gd[id] = d.GateDelay(id)
		}
	}
	setup := d.Lib.P.DffSetupPs
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := d.Circuit.Gate(id)
		rq := req[id]
		for _, s := range g.Fanout {
			var v float64
			if d.Circuit.Gate(s).Type == logic.Dff {
				v = tEff - setup // capture at the D pin
			} else {
				v = req[s] - gd[s]
			}
			if v < rq {
				rq = v
			}
		}
		req[id] = rq
	}
	slack := make([]float64, n)
	for i := range slack {
		slack[i] = req[i] - r.mean[i]
	}
	return slack, nil
}

var inf = 1e300
