package ssta

// Journal support: a persistent scoring worker (see engine.ScoreAll)
// records every arrival form an Update overwrites and restores them
// when the round ends, returning the timer bitwise to its pre-round
// state. Recording is O(cones touched): the circuit-delay form is
// snapshotted once, each arrival only on its first overwrite. With
// the structure-of-arrays layout the replaced rows are copied into
// three flat undo slices (Update now overwrites rows in place, so the
// old storage cannot be aliased the way the per-gate []Canonical
// layout allowed), and restore is a contiguous copy-back per touched
// row — bitwise, by construction. The delay snapshot stays by value:
// refold always allocates Result.Delay freshly.
type incJournal struct {
	delay Canonical
	ids   []int     // nodes touched, in first-touch order
	mean  []float64 // pre-touch row values, parallel to ids
	rand  []float64
	sens  []float64 // len(ids)×NumPC row-major

	// First-touch detection by generation stamp: stamp[id] == gen marks
	// id as already recorded this round. Bumping gen retires a whole
	// round in O(1) — no per-round map clearing on the scoring hot path.
	stamp []int
	gen   int
}

// StartJournal begins recording. Every Update until RestoreJournal is
// undone exactly by RestoreJournal; nesting is not supported (a second
// Start before Restore re-snapshots and forgets the first).
func (inc *Incremental) StartJournal() {
	j := inc.journal
	if j == nil {
		j = inc.spare
		if j == nil {
			j = &incJournal{}
		}
		inc.spare = nil
		inc.journal = j
	}
	if len(j.stamp) < len(inc.res.mean) {
		j.stamp = make([]int, len(inc.res.mean))
		j.gen = 0
	}
	j.gen++
	j.delay = inc.res.Delay
	j.ids = j.ids[:0]
	j.mean = j.mean[:0]
	j.rand = j.rand[:0]
	j.sens = j.sens[:0]
}

// RestoreJournal puts the timing view back to its StartJournal state
// bitwise and stops recording. A no-op if no journal is active.
func (inc *Incremental) RestoreJournal() {
	j := inc.journal
	if j == nil {
		return
	}
	k := inc.res.NumPC
	for i, id := range j.ids {
		inc.res.mean[id] = j.mean[i]
		inc.res.rand[id] = j.rand[i]
		copy(inc.res.sens[id*k:(id+1)*k], j.sens[i*k:(i+1)*k])
	}
	inc.res.Delay = j.delay
	inc.journal = nil
	inc.spare = j // keep the allocations for the next round
}

// note records the arrival row of node id before its first overwrite.
func (j *incJournal) note(inc *Incremental, id int) {
	if j.stamp[id] == j.gen {
		return
	}
	j.stamp[id] = j.gen
	j.ids = append(j.ids, id)
	j.mean = append(j.mean, inc.res.mean[id])
	j.rand = append(j.rand, inc.res.rand[id])
	k := inc.res.NumPC
	j.sens = append(j.sens, inc.res.sens[id*k:(id+1)*k]...)
}
