package ssta

// Journal support: a persistent scoring worker (see engine.ScoreAll)
// records every arrival form an Update overwrites and restores them
// when the round ends, returning the timer bitwise to its pre-round
// state. Recording is O(cones touched): the circuit-delay form is
// snapshotted once, each arrival only on its first overwrite. The old
// Canonical values are kept by value — Max/Add always allocate fresh
// Sens slices, so a replaced form's slice is never written again and
// can be held without copying.
type incJournal struct {
	delay Canonical
	ids   []int
	olds  []Canonical

	// First-touch detection by generation stamp: stamp[id] == gen marks
	// id as already recorded this round. Bumping gen retires a whole
	// round in O(1) — no per-round map clearing on the scoring hot path.
	stamp []int
	gen   int
}

// StartJournal begins recording. Every Update until RestoreJournal is
// undone exactly by RestoreJournal; nesting is not supported (a second
// Start before Restore re-snapshots and forgets the first).
func (inc *Incremental) StartJournal() {
	j := inc.journal
	if j == nil {
		j = inc.spare
		if j == nil {
			j = &incJournal{}
		}
		inc.spare = nil
		inc.journal = j
	}
	if len(j.stamp) < len(inc.res.Arrivals) {
		j.stamp = make([]int, len(inc.res.Arrivals))
		j.gen = 0
	}
	j.gen++
	j.delay = inc.res.Delay
	j.ids = j.ids[:0]
	j.olds = j.olds[:0]
}

// RestoreJournal puts the timing view back to its StartJournal state
// bitwise and stops recording. A no-op if no journal is active.
func (inc *Incremental) RestoreJournal() {
	j := inc.journal
	if j == nil {
		return
	}
	for i, id := range j.ids {
		inc.res.Arrivals[id] = j.olds[i]
	}
	inc.res.Delay = j.delay
	inc.journal = nil
	inc.spare = j // keep the allocations for the next round
}

// note records the arrival form of node id before its first overwrite.
func (j *incJournal) note(inc *Incremental, id int) {
	if j.stamp[id] == j.gen {
		return
	}
	j.stamp[id] = j.gen
	j.ids = append(j.ids, id)
	j.olds = append(j.olds, inc.res.Arrivals[id])
}
