package ssta_test

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/montecarlo"
	"repro/internal/ssta"
	"repro/internal/sta"
	"repro/internal/stats"
)

func TestCanonicalAlgebra(t *testing.T) {
	a := ssta.Canonical{Mean: 10, Sens: []float64{1, 2}, Rand: 2}
	b := ssta.Canonical{Mean: 5, Sens: []float64{-1, 1}, Rand: 1}
	if got := a.Variance(); got != 1+4+4 {
		t.Errorf("Variance = %g", got)
	}
	sum := ssta.Add(a, b)
	if sum.Mean != 15 {
		t.Errorf("Add mean = %g", sum.Mean)
	}
	if sum.Sens[0] != 0 || sum.Sens[1] != 3 {
		t.Errorf("Add sens = %v", sum.Sens)
	}
	if math.Abs(sum.Rand-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Add rand = %g", sum.Rand)
	}
	// Covariance uses only the shared globals.
	if got := ssta.Covariance(a, b); got != -1+2 {
		t.Errorf("Covariance = %g", got)
	}
	// AddInPlace agrees with Add.
	c := a.Clone()
	ssta.AddInPlace(&c, b)
	if c.Mean != sum.Mean || c.Rand != sum.Rand || c.Sens[0] != sum.Sens[0] || c.Sens[1] != sum.Sens[1] {
		t.Error("AddInPlace differs from Add")
	}
}

func TestCanonicalCorrelationBounds(t *testing.T) {
	a := ssta.Canonical{Mean: 0, Sens: []float64{3}, Rand: 0}
	b := ssta.Canonical{Mean: 0, Sens: []float64{5}, Rand: 0}
	if got := ssta.Correlation(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfectly correlated forms give rho = %g", got)
	}
	det := ssta.NewCanonical(4, 1)
	if got := ssta.Correlation(det, a); got != 0 {
		t.Errorf("deterministic form correlation = %g", got)
	}
}

func TestMaxMatchesClark(t *testing.T) {
	a := ssta.Canonical{Mean: 10, Sens: []float64{2, 0}, Rand: 1}
	b := ssta.Canonical{Mean: 9, Sens: []float64{1, 1}, Rand: 0.5}
	m := ssta.Max(a, b)
	ref := stats.ClarkMax(a.Mean, a.Sigma(), b.Mean, b.Sigma(), ssta.Correlation(a, b))
	if math.Abs(m.Mean-ref.Mean) > 1e-12 {
		t.Errorf("Max mean %g vs Clark %g", m.Mean, ref.Mean)
	}
	if math.Abs(m.Variance()-ref.Variance) > 1e-9 {
		t.Errorf("Max variance %g vs Clark %g", m.Variance(), ref.Variance)
	}
	// Sensitivities are a tightness blend.
	for k := range m.Sens {
		want := ref.Tightness*a.Sens[k] + (1-ref.Tightness)*b.Sens[k]
		if math.Abs(m.Sens[k]-want) > 1e-12 {
			t.Errorf("Max sens[%d] = %g, want %g", k, m.Sens[k], want)
		}
	}
}

func TestMaxDominance(t *testing.T) {
	a := ssta.Canonical{Mean: 100, Sens: []float64{1}, Rand: 0.5}
	b := ssta.Canonical{Mean: 0, Sens: []float64{0.1}, Rand: 0.1}
	m := ssta.Max(a, b)
	if math.Abs(m.Mean-a.Mean) > 1e-6 || math.Abs(m.Sigma()-a.Sigma()) > 1e-6 {
		t.Errorf("dominant Max should return the dominant form: %+v", m)
	}
	// Max of perfectly correlated identical forms (no private residual)
	// is the form itself. With private residuals the model treats the
	// two operands' residuals as independent — the classic Clark
	// approximation — so we only require a small positive bias there.
	c := ssta.Canonical{Mean: 50, Sens: []float64{2, 1}}
	m2 := ssta.Max(c, c)
	if math.Abs(m2.Mean-c.Mean) > 1e-9 || math.Abs(m2.Sigma()-c.Sigma()) > 1e-9 {
		t.Errorf("Max(c,c) = %+v, want c", m2)
	}
	m3 := ssta.Max(a, a)
	if m3.Mean < a.Mean || m3.Mean > a.Mean+a.Rand {
		t.Errorf("Max(a,a) mean %g outside [%g,%g]", m3.Mean, a.Mean, a.Mean+a.Rand)
	}
}

func TestMaxAll(t *testing.T) {
	forms := []ssta.Canonical{
		{Mean: 1, Sens: []float64{0}, Rand: 0.1},
		{Mean: 5, Sens: []float64{0}, Rand: 0.1},
		{Mean: 3, Sens: []float64{0}, Rand: 0.1},
	}
	m := ssta.MaxAll(forms)
	if m.Mean < 5 {
		t.Errorf("MaxAll mean %g < 5", m.Mean)
	}
	defer func() {
		if recover() == nil {
			t.Error("MaxAll(empty) did not panic")
		}
	}()
	ssta.MaxAll(nil)
}

func TestAnalyzeMeanTracksNominalSTA(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := sta.Analyze(d, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Clark's max only adds positive bias, so the SSTA mean is at or
	// slightly above the nominal deterministic delay.
	if sr.Delay.Mean < dr.MaxDelay {
		t.Errorf("SSTA mean %g below nominal max %g", sr.Delay.Mean, dr.MaxDelay)
	}
	if sr.Delay.Mean > dr.MaxDelay*1.15 {
		t.Errorf("SSTA mean %g too far above nominal %g", sr.Delay.Mean, dr.MaxDelay)
	}
	if sr.Delay.Sigma() <= 0 {
		t.Error("circuit delay sigma must be positive under variation")
	}
}

// TestAnalyzeAgainstMonteCarlo is the package's T4-style validation:
// the canonical circuit-delay distribution must match the exact-model
// Monte Carlo within Clark-approximation tolerances.
func TestAnalyzeAgainstMonteCarlo(t *testing.T) {
	for _, name := range []string{"s432", "s880"} {
		d, err := fixture.Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ssta.Analyze(d)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 3000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ds := mc.DelaySummary()
		if rel := math.Abs(sr.Delay.Mean-ds.Mean) / ds.Mean; rel > 0.04 {
			t.Errorf("%s: SSTA mean %g vs MC %g (%.1f%%)", name, sr.Delay.Mean, ds.Mean, rel*100)
		}
		if rel := math.Abs(sr.Delay.Sigma()-ds.StdDev) / ds.StdDev; rel > 0.25 {
			t.Errorf("%s: SSTA sigma %g vs MC %g (%.1f%%)", name, sr.Delay.Sigma(), ds.StdDev, rel*100)
		}
		// Yield agreement at a few constraints around the mean.
		for _, k := range []float64{-1, 0, 1, 2} {
			tmax := ds.Mean + k*ds.StdDev
			ay := sr.Yield(tmax)
			my := mustYield(t, mc, tmax)
			if math.Abs(ay-my) > 0.06 {
				t.Errorf("%s: yield at mean%+gσ: SSTA %.3f vs MC %.3f", name, k, ay, my)
			}
		}
	}
}

func TestYieldQuantileConsistency(t *testing.T) {
	d, err := fixture.Suite("s499")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := r.Quantile(p)
		if y := r.Yield(q); math.Abs(y-p) > 1e-9 {
			t.Errorf("Yield(Quantile(%g)) = %g", p, y)
		}
	}
	if r.YieldConstraintDelay(0.99) != r.Quantile(0.99) {
		t.Error("YieldConstraintDelay != Quantile")
	}
}

func TestStatisticalSlackSemantics(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	eta := 0.99
	tmax := r.Quantile(eta) * 1.05
	slack, err := r.StatisticalSlack(d, tmax, eta)
	if err != nil {
		t.Fatal(err)
	}
	if len(slack) != d.Circuit.NumNodes() {
		t.Fatalf("slack length %d", len(slack))
	}
	// With tmax above the eta-quantile, most of the circuit has
	// positive statistical slack.
	neg := 0
	for _, g := range d.Circuit.Gates() {
		if g.Type != logic.Input && slack[g.ID] < 0 {
			neg++
		}
	}
	if neg > d.Circuit.NumGates()/10 {
		t.Errorf("%d/%d gates negative statistical slack under a loose constraint", neg, d.Circuit.NumGates())
	}
	// Tightening the constraint reduces every slack.
	slack2, err := r.StatisticalSlack(d, tmax-50, eta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range slack {
		if slack2[i] >= slack[i] {
			t.Fatalf("slack at node %d did not shrink: %g -> %g", i, slack[i], slack2[i])
		}
	}
}

func TestGateDelayCanonicalStructure(t *testing.T) {
	d, err := fixture.C17()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range d.Circuit.Gates() {
		c := ssta.GateDelayCanonical(d, g.ID)
		if g.Type == logic.Input {
			if c.Mean != 0 || c.Rand != 0 {
				t.Errorf("PI %s canonical not zero", g.Name)
			}
			continue
		}
		if math.Abs(c.Mean-d.GateDelay(g.ID)) > 1e-12 {
			t.Errorf("%s: canonical mean %g != nominal %g", g.Name, c.Mean, d.GateDelay(g.ID))
		}
		if c.Rand <= 0 {
			t.Errorf("%s: no independent variation", g.Name)
		}
		if len(c.Sens) != d.Var.NumPC {
			t.Errorf("%s: sens dim %d != NumPC %d", g.Name, len(c.Sens), d.Var.NumPC)
		}
		// D2D sensitivity (index 0) must be positive: longer channels
		// are slower.
		if c.Sens[0] <= 0 {
			t.Errorf("%s: D2D delay sensitivity %g not positive", g.Name, c.Sens[0])
		}
	}
}

// mustYield unwraps TimingYield, failing the test on a malformed result.
func mustYield(t *testing.T, r *montecarlo.Result, tmax float64) float64 {
	t.Helper()
	y, err := r.TimingYield(tmax)
	if err != nil {
		t.Fatal(err)
	}
	return y
}
