package ssta

import "math"

// Importance-sampling support: extracting the dominant failure
// direction of the circuit-delay distribution in the shared-globals
// space, à la stochastic logical effort (ISLE, Bayrakci/Demir/Tasiran).
//
// The circuit delay is the canonical form D = μ + s·Z + r·R over the
// global variation vector Z. A timing failure {D > Tmax} is, to first
// order, the half-space {s·Z > Tmax − μ} in Z-space; the most probable
// failure point under Z ~ N(0, I) is the boundary's closest point to
// the origin,
//
//	Z* = s·(Tmax − μ)/|s|²,
//
// at distance (Tmax − μ)/|s| along the unit sensitivity direction.
// Centering the Monte Carlo proposal there puts roughly half the
// samples in the failure region instead of a 1−Y sliver, which is what
// buys the orders-of-magnitude sample reduction at high yield.

// maxShiftSigma caps the proposal shift magnitude: beyond ~6σ the
// first-order boundary model is extrapolating far outside the fitted
// region and likelihood-ratio weights degenerate anyway.
const maxShiftSigma = 6.0

// ISShift returns the importance-sampling proposal mean in globals
// space for the timing constraint tmax: the most probable failure
// point of the circuit-delay form. The returned slice has length NumPC
// and is freshly allocated. Degenerate cases return the zero shift —
// no global sensitivity (delay variance is all private), or a
// constraint already below the mean by more than the cap (failures are
// the bulk of the distribution and plain sampling is already
// efficient).
func (r *Result) ISShift(tmax float64) []float64 {
	s := r.Delay.Sens
	shift := make([]float64, len(s))
	norm2 := 0.0
	for _, v := range s {
		norm2 += v * v
	}
	if norm2 <= 0 || math.IsNaN(norm2) {
		return shift
	}
	norm := math.Sqrt(norm2)
	// Signed distance from the origin to the failure boundary along the
	// unit sensitivity direction, capped in both directions.
	dist := (tmax - r.Delay.Mean) / norm
	if dist > maxShiftSigma {
		dist = maxShiftSigma
	}
	if dist < -maxShiftSigma {
		dist = -maxShiftSigma
	}
	for k, v := range s {
		shift[k] = dist * v / norm
	}
	return shift
}
