package sta_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/sta"
	"repro/internal/tech"
)

func c17(t testing.TB) *core.Design {
	t.Helper()
	d, err := fixture.C17()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func analyze(t testing.TB, d *core.Design, tmax float64) *sta.Result {
	t.Helper()
	r, err := sta.Analyze(d, tmax)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestArrivalRecurrence(t *testing.T) {
	d := c17(t)
	r := analyze(t, d, 1000)
	for _, g := range d.Circuit.Gates() {
		if g.Type == logic.Input {
			if r.Arrival[g.ID] != 0 {
				t.Fatalf("PI %s arrival %g != 0", g.Name, r.Arrival[g.ID])
			}
			continue
		}
		worst := 0.0
		for _, f := range g.Fanin {
			if r.Arrival[f] > worst {
				worst = r.Arrival[f]
			}
		}
		want := worst + d.GateDelay(g.ID)
		if math.Abs(r.Arrival[g.ID]-want) > 1e-9 {
			t.Fatalf("arrival(%s) = %g, want %g", g.Name, r.Arrival[g.ID], want)
		}
	}
}

func TestMaxDelayIsWorstPO(t *testing.T) {
	d := c17(t)
	r := analyze(t, d, 1000)
	worst := 0.0
	for _, o := range d.Circuit.Outputs() {
		if r.Arrival[o] > worst {
			worst = r.Arrival[o]
		}
	}
	if r.MaxDelay != worst {
		t.Errorf("MaxDelay = %g, want %g", r.MaxDelay, worst)
	}
	if !d.IsOutput(r.WorstOutput) {
		t.Error("WorstOutput is not a PO")
	}
	if r.MaxDelay <= 0 {
		t.Error("MaxDelay must be positive")
	}
}

func TestSlackSemantics(t *testing.T) {
	d := c17(t)
	r := analyze(t, d, 1000)
	// At Tmax = MaxDelay the worst path has zero slack.
	r0 := analyze(t, d, r.MaxDelay)
	if ws := r0.WorstSlack(); math.Abs(ws) > 1e-9 {
		t.Errorf("worst slack at Tmax=MaxDelay is %g, want 0", ws)
	}
	// Loosening the constraint raises every slack by the same amount.
	r1 := analyze(t, d, r.MaxDelay+100)
	for i := range r0.Slack {
		if math.Abs((r1.Slack[i]-r0.Slack[i])-100) > 1e-9 {
			t.Fatalf("slack shift at node %d: %g", i, r1.Slack[i]-r0.Slack[i])
		}
	}
	// Slack must never exceed Tmax − longest-path-through-node, i.e.
	// required >= arrival on critical path nodes exactly at 0.
	for _, id := range r0.CriticalPath(d) {
		if math.Abs(r0.Slack[id]) > 1e-9 {
			t.Fatalf("critical-path node %d has slack %g", id, r0.Slack[id])
		}
	}
}

func TestCriticalPathIsConnectedAndMonotone(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, d, 1e6)
	path := r.CriticalPath(d)
	if len(path) < 2 {
		t.Fatalf("critical path too short: %v", path)
	}
	if d.Circuit.Gate(path[0]).Type != logic.Input {
		t.Error("critical path does not start at a PI")
	}
	if path[len(path)-1] != r.WorstOutput {
		t.Error("critical path does not end at the worst PO")
	}
	for i := 1; i < len(path); i++ {
		g := d.Circuit.Gate(path[i])
		found := false
		for _, f := range g.Fanin {
			if f == path[i-1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path edge %d→%d not a fanin edge", path[i-1], path[i])
		}
		if r.Arrival[path[i]] <= r.Arrival[path[i-1]] {
			t.Fatal("arrivals not increasing along critical path")
		}
	}
}

func TestHVTSwapIncreasesDelay(t *testing.T) {
	d := c17(t)
	before := analyze(t, d, 1000).MaxDelay
	// Swap every gate to HVT: the whole circuit slows by the tau ratio.
	for _, g := range d.Circuit.Gates() {
		if g.Type != logic.Input {
			if err := d.SetVth(g.ID, tech.HighVth); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := analyze(t, d, 1000).MaxDelay
	ratio := after / before
	want := d.Lib.HVTDelayRatio()
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("all-HVT delay ratio = %g, want %g", ratio, want)
	}
}

func TestUniformUpsizeReducesDelay(t *testing.T) {
	// Doubling every size doubles all gate-input loads but leaves wire
	// and PO loads fixed, so every stage's effort delay strictly
	// improves — MaxDelay must drop. (Upsizing only part of a path has
	// no such guarantee: the added input capacitance can slow off-path
	// fanins, which is exactly why the optimizers evaluate moves with
	// full STA.)
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	before := analyze(t, d, 1e6).MaxDelay
	for _, g := range d.Circuit.Gates() {
		if g.Type == logic.Input {
			continue
		}
		if err := d.SetSize(g.ID, 2); err != nil {
			t.Fatal(err)
		}
	}
	after := analyze(t, d, 1e6).MaxDelay
	if after >= before {
		t.Errorf("uniform upsize did not help: %g >= %g", after, before)
	}
}

func TestMaxDelayWithDelaysAgreesWithAnalyze(t *testing.T) {
	d, err := fixture.Suite("s880")
	if err != nil {
		t.Fatal(err)
	}
	order, err := d.Circuit.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	delays := make([]float64, d.Circuit.NumNodes())
	for _, g := range d.Circuit.Gates() {
		if g.Type != logic.Input {
			delays[g.ID] = d.GateDelay(g.ID)
		}
	}
	got := sta.MaxDelayWithDelays(d.Circuit, order, delays, nil, d.Lib.P.DffSetupPs)
	want := analyze(t, d, 1e6).MaxDelay
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MaxDelayWithDelays = %g, Analyze = %g", got, want)
	}
	// Scratch reuse path gives the same answer.
	scratch := make([]float64, d.Circuit.NumNodes())
	got2 := sta.MaxDelayWithDelays(d.Circuit, order, delays, scratch, d.Lib.P.DffSetupPs)
	if got2 != got {
		t.Errorf("scratch path differs: %g vs %g", got2, got)
	}
}

func TestSlackNonNegativeWhenConstraintLoose(t *testing.T) {
	d, err := fixture.Suite("s499")
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, d, 1e6)
	r2 := analyze(t, d, r.MaxDelay*1.2)
	if ws := r2.WorstSlack(); ws < 0 {
		t.Errorf("negative slack %g under a loose constraint", ws)
	}
}
