package sta_test

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/montecarlo"
	"repro/internal/sta"
	"repro/internal/variation"
)

func TestCornerOffsetsStructure(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	dL, dV := sta.CornerOffsets(d, 3)
	if dV != 0 {
		t.Errorf("corner ΔVth = %g; corner files carry systematic L only", dV)
	}
	cfg := d.Var.Cfg
	want := 3 * math.Sqrt(cfg.FracD2D+cfg.FracCorr) * cfg.SigmaLNm
	if math.Abs(dL-want) > 1e-12 {
		t.Errorf("corner ΔL = %g, want %g", dL, want)
	}
	if dL0, _ := sta.CornerOffsets(d, 0); dL0 != 0 {
		t.Error("zero-sigma corner must be the nominal point")
	}
}

func TestAnalyzeCornerPessimisticAndMonotone(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	nom, err := sta.Analyze(d, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	prev := nom.MaxDelay
	for _, k := range []float64{1, 2, 3} {
		r, err := sta.AnalyzeCorner(d, 1e6, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.MaxDelay <= prev {
			t.Errorf("corner %gσ delay %g not above %g", k, r.MaxDelay, prev)
		}
		prev = r.MaxDelay
	}
	// The 3σ corner is a genuinely conservative bound: nearly every MC
	// die is faster.
	c3, err := sta.AnalyzeCorner(d, 1e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 1000, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if y := mustYield(t, mc, c3.MaxDelay); y < 0.995 {
		t.Errorf("3σ corner only covers %.3f of dies", y)
	}
	// But it is not absurdly above the distribution: the 1σ corner
	// must NOT cover everything (otherwise the corner model is too
	// pessimistic to be meaningful).
	c1, err := sta.AnalyzeCorner(d, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y := mustYield(t, mc, c1.MaxDelay); y > 0.995 {
		t.Errorf("1σ corner already covers %.3f of dies; corner scale off", y)
	}
}

func newVar(cfg variation.Config) (*variation.Model, error) { return variation.New(cfg) }

func TestCornerScalesWithDecomposition(t *testing.T) {
	// With purely independent variation the systematic corner
	// degenerates to the nominal point.
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Var.Cfg
	cfg.FracD2D, cfg.FracCorr, cfg.FracInd = 0, 0, 1
	vm, err := newVar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Var = vm
	dL, _ := sta.CornerOffsets(d, 3)
	if dL != 0 {
		t.Errorf("independent-only corner ΔL = %g, want 0", dL)
	}
}

// mustYield unwraps TimingYield, failing the test on a malformed result.
func mustYield(t *testing.T, r *montecarlo.Result, tmax float64) float64 {
	t.Helper()
	y, err := r.TimingYield(tmax)
	if err != nil {
		t.Fatal(err)
	}
	return y
}
