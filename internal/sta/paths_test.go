package sta_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/sta"
)

func topPaths(t testing.TB, d *core.Design, k int) []sta.Path {
	t.Helper()
	ps, err := sta.TopPaths(d, k)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// pathDelay recomputes a path's delay from scratch.
func pathDelay(d *core.Design, p sta.Path) float64 {
	sum := 0.0
	for i, id := range p.Nodes {
		g := d.Circuit.Gate(id)
		switch {
		case g.Type == logic.Input:
			continue
		case g.Type == logic.Dff && i == len(p.Nodes)-1:
			sum += d.Lib.P.DffSetupPs // capture
		default:
			sum += d.GateDelay(id) // includes clk-to-Q when launching
		}
	}
	return sum
}

func TestTopPathsWorstMatchesSTA(t *testing.T) {
	for _, name := range []string{"s432", "q344"} {
		d, err := fixture.Suite(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sta.Analyze(d, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		ps := topPaths(t, d, 1)
		if len(ps) != 1 {
			t.Fatalf("%s: got %d paths", name, len(ps))
		}
		if math.Abs(ps[0].DelayPs-r.MaxDelay) > 1e-9 {
			t.Errorf("%s: worst path %g != MaxDelay %g", name, ps[0].DelayPs, r.MaxDelay)
		}
	}
}

func TestTopPathsOrderedDistinctAndConsistent(t *testing.T) {
	d, err := fixture.Suite("s432")
	if err != nil {
		t.Fatal(err)
	}
	const k = 25
	ps := topPaths(t, d, k)
	if len(ps) != k {
		t.Fatalf("got %d paths, want %d", len(ps), k)
	}
	seen := map[string]bool{}
	for i, p := range ps {
		if i > 0 && p.DelayPs > ps[i-1].DelayPs+1e-9 {
			t.Fatalf("paths not in decreasing order at %d", i)
		}
		// Recomputed delay matches the reported one.
		if math.Abs(pathDelay(d, p)-p.DelayPs) > 1e-9 {
			t.Fatalf("path %d delay %g recomputes to %g", i, p.DelayPs, pathDelay(d, p))
		}
		// Connectivity: consecutive nodes are fanin edges (except the
		// DFF capture hop which is also a fanin edge by construction).
		for j := 1; j < len(p.Nodes); j++ {
			ok := false
			for _, f := range d.Circuit.Gate(p.Nodes[j]).Fanin {
				if f == p.Nodes[j-1] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("path %d: %d→%d not an edge", i, p.Nodes[j-1], p.Nodes[j])
			}
		}
		// Launch point at the front.
		ty := d.Circuit.Gate(p.Nodes[0]).Type
		if ty != logic.Input && ty != logic.Dff {
			t.Fatalf("path %d starts at %v", i, ty)
		}
		key := sta.FormatPath(d, p)
		if seen[key] {
			t.Fatalf("duplicate path: %s", key)
		}
		seen[key] = true
	}
}

func TestTopPathsExhaustiveOnC17(t *testing.T) {
	env, err := fixture.DefaultEnv()
	if err != nil {
		t.Fatal(err)
	}
	_ = env
	d, err := fixture.C17()
	if err != nil {
		t.Fatal(err)
	}
	// c17 has exactly 11 distinct PI→PO paths; ask for more and check
	// we get them all.
	ps := topPaths(t, d, 100)
	if len(ps) != 11 {
		t.Errorf("c17 path count = %d, want 11", len(ps))
	}
}

func TestTopPathsRejectsBadK(t *testing.T) {
	d, err := fixture.C17()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.TopPaths(d, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
