package sta

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
	"repro/internal/logic"
)

// Path is one timing path from a launch point (primary input or
// flip-flop Q) to an endpoint (primary output or flip-flop D pin,
// including setup).
type Path struct {
	// Nodes from launch to endpoint. A captured path ends at the
	// capturing flip-flop's node ID.
	Nodes []int
	// DelayPs is the total path delay including any setup time.
	DelayPs float64
}

// pathState is a partial path being grown backward from an endpoint.
type pathState struct {
	node      int     // next node to expand (not yet in suffix)
	suffix    []int   // nodes already fixed, endpoint-first
	suffixPs  float64 // delay of the fixed suffix (incl. setup)
	potential float64 // arrival[node] + suffixPs: exact best completion
}

type pathHeap []pathState

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return h[i].potential > h[j].potential }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(pathState)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopPaths enumerates the k longest timing paths of the design in
// exact decreasing delay order — the report_timing analogue. It runs
// best-first search backward from every endpoint; a state's potential
// (forward arrival at the frontier node plus the fixed suffix delay)
// is exactly the delay of its best completion, so the first k emitted
// paths are the k worst. Complexity is O(k·depth·log) beyond one STA.
func TopPaths(d *core.Design, k int) ([]Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sta: TopPaths needs k > 0, got %d", k)
	}
	r, err := Analyze(d, 1)
	if err != nil {
		return nil, err
	}
	c := d.Circuit
	setup := d.Lib.P.DffSetupPs

	h := &pathHeap{}
	for _, o := range c.Outputs() {
		heap.Push(h, pathState{
			node:      o,
			suffix:    nil,
			suffixPs:  0,
			potential: r.Arrival[o],
		})
	}
	for _, f := range c.Dffs() {
		din := c.Gate(f).Fanin[0]
		heap.Push(h, pathState{
			node:      din,
			suffix:    []int{f},
			suffixPs:  setup,
			potential: r.Arrival[din] + setup,
		})
	}

	var out []Path
	for h.Len() > 0 && len(out) < k {
		st := heap.Pop(h).(pathState)
		g := c.Gate(st.node)
		if g.Type == logic.Input || g.Type == logic.Dff {
			// Launch point reached: materialize the path.
			nodes := make([]int, 0, len(st.suffix)+1)
			nodes = append(nodes, st.node)
			for i := len(st.suffix) - 1; i >= 0; i-- {
				nodes = append(nodes, st.suffix[i])
			}
			delay := st.suffixPs
			if g.Type == logic.Dff {
				delay += d.GateDelay(st.node) // clock-to-Q launch
			}
			out = append(out, Path{Nodes: nodes, DelayPs: delay})
			continue
		}
		suffix := append(append([]int(nil), st.suffix...), st.node)
		suffixPs := st.suffixPs + d.GateDelay(st.node)
		for _, fi := range g.Fanin {
			heap.Push(h, pathState{
				node:      fi,
				suffix:    suffix,
				suffixPs:  suffixPs,
				potential: r.Arrival[fi] + suffixPs,
			})
		}
	}
	return out, nil
}

// FormatPath renders a path as "I3 → N17 → … → N158 (1234.5 ps)".
func FormatPath(d *core.Design, p Path) string {
	s := ""
	for i, id := range p.Nodes {
		if i > 0 {
			s += " → "
		}
		s += d.Circuit.Gate(id).Name
	}
	return fmt.Sprintf("%s (%.1f ps)", s, p.DelayPs)
}
