// Package sta implements deterministic (corner/nominal) static timing
// analysis over a Design: arrival times, required times, slacks, the
// critical path, and a fast arrival-only evaluation used per Monte
// Carlo sample. It is the timing engine of the deterministic baseline
// optimizer the paper compares against.
package sta

import (
	"math"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/stats"
)

// Result holds a full timing analysis.
type Result struct {
	// Arrival[i] is the latest signal arrival time [ps] at the output
	// of node i (0 at primary inputs; clock-to-Q at flip-flops).
	Arrival []float64
	// Required[i] is the latest allowed arrival [ps] at node i's output
	// for the circuit to meet the constraint Tmax.
	Required []float64
	// Slack[i] = Required[i] − Arrival[i].
	Slack []float64
	// MaxDelay is the largest endpoint arrival [ps]: over primary
	// outputs, and over flip-flop data pins including the setup time
	// (i.e. the minimum feasible clock period for sequential
	// circuits).
	MaxDelay float64
	// WorstOutput is the endpoint node achieving MaxDelay — a PO, or
	// the capturing flip-flop.
	WorstOutput int
}

// Analyze runs STA at the nominal process point with the given delay
// constraint Tmax [ps] (used only for required times/slacks; pass
// MaxDelay for zero-slack normalization).
func Analyze(d *core.Design, tmax float64) (*Result, error) {
	return analyzeAt(d, tmax, 0, 0)
}

// AnalyzeCorner runs STA with every gate evaluated at a pessimistic
// process corner: the systematic (die-to-die plus spatially
// correlated) channel-length variation pushed k sigmas slow,
// simultaneously for all gates. This is the classic worst-case corner
// methodology the deterministic baseline optimizer designs against —
// and whose pessimism the statistical optimizer recovers. Independent
// per-gate variation (which averages out along paths and is not in
// corner files) is not included.
func AnalyzeCorner(d *core.Design, tmax, k float64) (*Result, error) {
	dL, dV := CornerOffsets(d, k)
	return analyzeAt(d, tmax, dL, dV)
}

// CornerOffsets returns the (ΔLeff [nm], ΔVth [V]) excursion of the
// k-sigma slow systematic corner for the design's variation model.
func CornerOffsets(d *core.Design, k float64) (dLnm, dVthV float64) {
	cfg := d.Var.Cfg
	return k * math.Sqrt(cfg.FracD2D+cfg.FracCorr) * cfg.SigmaLNm, 0
}

func analyzeAt(d *core.Design, tmax, dLnm, dVthV float64) (*Result, error) {
	n := d.Circuit.NumNodes()
	delays := make([]float64, n)
	for _, g := range d.Circuit.Gates() {
		if g.Type == logic.Input {
			continue
		}
		if stats.EqZero(dLnm) && stats.EqZero(dVthV) {
			delays[g.ID] = d.GateDelay(g.ID)
		} else {
			delays[g.ID] = d.GateDelayWith(g.ID, dLnm, dVthV)
		}
	}
	return AnalyzeDelays(d.Circuit, delays, tmax, d.Lib.P.DffSetupPs)
}

// AnalyzeDelays runs full STA over an externally supplied per-node
// delay vector. Flip-flops launch at their clock-to-Q (delays[dff])
// and capture at their data pins with the given setup margin; a
// sequential circuit's MaxDelay is therefore its minimum clock
// period.
func AnalyzeDelays(c *logic.Circuit, delays []float64, tmax, dffSetupPs float64) (*Result, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := c.NumNodes()
	r := &Result{
		Arrival:     make([]float64, n),
		Required:    make([]float64, n),
		Slack:       make([]float64, n),
		MaxDelay:    0,
		WorstOutput: -1,
	}
	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case logic.Input:
			continue
		case logic.Dff:
			r.Arrival[id] = delays[id] // launch: clock edge + clk-to-Q
			continue
		}
		at := 0.0
		for _, f := range g.Fanin {
			if r.Arrival[f] > at {
				at = r.Arrival[f]
			}
		}
		r.Arrival[id] = at + delays[id]
	}
	for _, o := range c.Outputs() {
		if r.Arrival[o] >= r.MaxDelay {
			r.MaxDelay = r.Arrival[o]
			r.WorstOutput = o
		}
	}
	for _, f := range c.Dffs() {
		capture := r.Arrival[c.Gate(f).Fanin[0]] + dffSetupPs
		if capture >= r.MaxDelay {
			r.MaxDelay = capture
			r.WorstOutput = f
		}
	}
	// Required times: backward pass in reverse topological order.
	for i := range r.Required {
		r.Required[i] = math.Inf(1)
	}
	for _, o := range c.Outputs() {
		if tmax < r.Required[o] {
			r.Required[o] = tmax
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		g := c.Gate(id)
		req := r.Required[id]
		for _, s := range g.Fanout {
			var v float64
			if c.Gate(s).Type == logic.Dff {
				v = tmax - dffSetupPs // capture at the D pin
			} else {
				v = r.Required[s] - delays[s]
			}
			if v < req {
				req = v
			}
		}
		r.Required[id] = req
	}
	for i := range r.Slack {
		r.Slack[i] = r.Required[i] - r.Arrival[i]
	}
	return r, nil
}

// WorstSlack returns the minimum slack over all nodes.
func (r *Result) WorstSlack() float64 {
	w := math.Inf(1)
	for _, s := range r.Slack {
		if s < w {
			w = s
		}
	}
	return w
}

// CriticalPath walks back from the worst endpoint along the
// latest-arriving fanins, returning node IDs from a launch point (a
// primary input or a flip-flop Q pin) to the worst endpoint (a PO or
// the capturing flip-flop).
func (r *Result) CriticalPath(d *core.Design) []int {
	if r.WorstOutput < 0 {
		return nil
	}
	var rev []int
	id := r.WorstOutput
	for first := true; ; first = false {
		rev = append(rev, id)
		g := d.Circuit.Gate(id)
		if len(g.Fanin) == 0 || (g.Type == logic.Dff && !first) {
			break // launch point reached
		}
		best := g.Fanin[0]
		for _, f := range g.Fanin[1:] {
			if r.Arrival[f] > r.Arrival[best] {
				best = f
			}
		}
		id = best
	}
	// reverse in place
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// MaxDelayWithDelays computes the circuit max endpoint delay [ps] for
// an externally supplied per-node delay vector (Monte Carlo's inner
// loop), with flip-flops launching at delays[dff] and capturing with
// the given setup margin. order must be a topological order of the
// circuit; scratch, if non-nil and large enough, is reused for
// arrivals to avoid allocation.
func MaxDelayWithDelays(c *logic.Circuit, order []int, delays, scratch []float64, dffSetupPs float64) float64 {
	var arr []float64
	if cap(scratch) >= c.NumNodes() {
		arr = scratch[:c.NumNodes()]
		for i := range arr {
			arr[i] = 0
		}
	} else {
		arr = make([]float64, c.NumNodes())
	}
	for _, id := range order {
		g := c.Gate(id)
		switch g.Type {
		case logic.Input:
			continue
		case logic.Dff:
			arr[id] = delays[id]
			continue
		}
		at := 0.0
		for _, f := range g.Fanin {
			if arr[f] > at {
				at = arr[f]
			}
		}
		arr[id] = at + delays[id]
	}
	max := 0.0
	for _, o := range c.Outputs() {
		if arr[o] > max {
			max = arr[o]
		}
	}
	for _, f := range c.Dffs() {
		if v := arr[c.Gate(f).Fanin[0]] + dffSetupPs; v > max {
			max = v
		}
	}
	return max
}
