package sta_test

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fixture"
	"repro/internal/logic"
	"repro/internal/sta"
)

func s27(t testing.TB) *core.Design {
	t.Helper()
	env, err := fixture.DefaultEnv()
	if err != nil {
		t.Fatal(err)
	}
	c, err := bench.ParseString("s27", bench.S27)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDesign(c, env.Lib, env.Var)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSequentialLaunchCapture(t *testing.T) {
	d := s27(t)
	r := analyze(t, d, 1e6)
	// FF arrivals are exactly their clock-to-Q delay, independent of
	// the (cyclic) data cones.
	for _, f := range d.Circuit.Dffs() {
		if math.Abs(r.Arrival[f]-d.GateDelay(f)) > 1e-9 {
			t.Errorf("DFF %s arrival %g != clk-to-Q %g",
				d.Circuit.Gate(f).Name, r.Arrival[f], d.GateDelay(f))
		}
	}
	// MaxDelay covers DFF captures: it must be at least the worst
	// D-pin arrival plus setup.
	setup := d.Lib.P.DffSetupPs
	for _, f := range d.Circuit.Dffs() {
		cap := r.Arrival[d.Circuit.Gate(f).Fanin[0]] + setup
		if r.MaxDelay < cap-1e-9 {
			t.Errorf("MaxDelay %g below capture %g at %s", r.MaxDelay, cap, d.Circuit.Gate(f).Name)
		}
	}
	if r.MaxDelay <= 0 {
		t.Fatal("MaxDelay must be positive")
	}
}

func TestSequentialSlackZeroOnCriticalPath(t *testing.T) {
	d := s27(t)
	r := analyze(t, d, 1e6)
	r0 := analyze(t, d, r.MaxDelay)
	if ws := r0.WorstSlack(); math.Abs(ws) > 1e-9 {
		t.Errorf("worst slack at Tmax=MaxDelay is %g, want 0", ws)
	}
	// The critical path starts at a launch point and ends at the worst
	// endpoint.
	path := r0.CriticalPath(d)
	if len(path) < 2 {
		t.Fatalf("critical path too short: %v", path)
	}
	start := d.Circuit.Gate(path[0])
	if start.Type != logic.Input && start.Type != logic.Dff {
		t.Errorf("critical path starts at %v, want a launch point", start.Type)
	}
	if path[len(path)-1] != r0.WorstOutput {
		t.Error("critical path does not end at the worst endpoint")
	}
}

func TestSequentialSetupTimeShiftsMaxDelay(t *testing.T) {
	d := s27(t)
	base := analyze(t, d, 1e6).MaxDelay
	// If the worst endpoint is a DFF capture, adding setup time moves
	// MaxDelay one-for-one. Construct that case by re-analyzing with a
	// larger setup through AnalyzeDelays directly.
	delays := make([]float64, d.Circuit.NumNodes())
	for _, g := range d.Circuit.Gates() {
		if g.Type != logic.Input {
			delays[g.ID] = d.GateDelay(g.ID)
		}
	}
	setup := d.Lib.P.DffSetupPs
	r1, err := sta.AnalyzeDelays(d.Circuit, delays, 1e6, setup)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.MaxDelay-base) > 1e-9 {
		t.Fatalf("AnalyzeDelays disagrees with Analyze: %g vs %g", r1.MaxDelay, base)
	}
	r2, err := sta.AnalyzeDelays(d.Circuit, delays, 1e6, setup+100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Circuit.Gate(r2.WorstOutput).Type == logic.Dff {
		if math.Abs((r2.MaxDelay-r1.MaxDelay)-100) > 1e-9 && r2.MaxDelay <= r1.MaxDelay {
			t.Errorf("setup increase did not move a DFF-capture MaxDelay: %g -> %g", r1.MaxDelay, r2.MaxDelay)
		}
	}
	if r2.MaxDelay < r1.MaxDelay {
		t.Error("larger setup reduced MaxDelay")
	}
}

func TestSequentialSuiteAnalyzes(t *testing.T) {
	d, err := fixture.Suite("q1423")
	if err != nil {
		t.Fatal(err)
	}
	r := analyze(t, d, 1e6)
	if r.MaxDelay <= 0 {
		t.Fatal("non-positive min clock period")
	}
	// Every DFF must have a sane slack at a loose constraint.
	r2 := analyze(t, d, r.MaxDelay*1.2)
	if ws := r2.WorstSlack(); ws < 0 {
		t.Errorf("negative slack %g at a loose constraint", ws)
	}
}
