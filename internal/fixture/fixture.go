// Package fixture provides ready-made designs for tests and examples:
// the embedded c17 netlist and synthetic suite circuits bound to the
// default 100nm library and variation model.
package fixture

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/tech"
	"repro/internal/variation"
)

// Env bundles the shared technology context of a test design.
type Env struct {
	Lib *tech.Library
	Var *variation.Model
}

// DefaultEnv builds the default 100nm library and variation model.
func DefaultEnv() (*Env, error) {
	p := tech.Default100nm()
	lib, err := tech.NewLibrary(p)
	if err != nil {
		return nil, err
	}
	vm, err := variation.New(variation.Default(p.LeffNom))
	if err != nil {
		return nil, err
	}
	return &Env{Lib: lib, Var: vm}, nil
}

// C17 returns a fresh design over the embedded c17 netlist.
func C17() (*core.Design, error) {
	env, err := DefaultEnv()
	if err != nil {
		return nil, err
	}
	c, err := bench.ParseString("c17", bench.C17)
	if err != nil {
		return nil, err
	}
	return core.NewDesign(c, env.Lib, env.Var)
}

// Suite returns a fresh design over the named synthetic suite circuit
// — combinational ("s432" … "s7552") or sequential ("q344" … "q5378").
func Suite(name string) (*core.Design, error) {
	env, err := DefaultEnv()
	if err != nil {
		return nil, err
	}
	var c *logic.Circuit
	if cfg, err := bench.SuiteConfig(name); err == nil {
		c, err = bench.Generate(cfg)
		if err != nil {
			return nil, err
		}
	} else if scfg, serr := bench.SeqSuiteConfig(name); serr == nil {
		c, err = bench.GenerateSeq(scfg)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}
	d, err := core.NewDesign(c, env.Lib, env.Var)
	if err != nil {
		return nil, fmt.Errorf("fixture: %v", err)
	}
	return d, nil
}
