// Package repro's root benchmark harness: one benchmark per
// reconstructed table, figure and ablation (see DESIGN.md §5), so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Each benchmark executes the same
// driver cmd/experiments runs, against a reduced configuration
// (s432/s880-scale circuits, 300 MC samples) so a full sweep stays in
// the minutes range; cmd/experiments runs the paper-scale version.
package repro

import (
	"io"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fixture"
	"repro/internal/leakage"
	"repro/internal/montecarlo"
	"repro/internal/opt"
	"repro/internal/ssta"
	"repro/internal/sta"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/yield"
)

func benchCtx() *exp.Context {
	ctx := exp.NewContext(io.Discard)
	ctx.Benchmarks = []string{"s432"}
	ctx.MCSamples = 300
	return ctx
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := benchCtx().Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Benchmarks regenerates Table 1 (suite
// characteristics; always the full 10-circuit suite).
func BenchmarkTable1Benchmarks(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Deterministic regenerates Table 2 (deterministic
// dual-Vth+sizing leakage recovery).
func BenchmarkTable2Deterministic(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Statistical regenerates Table 3 (the headline
// deterministic-vs-statistical comparison).
func BenchmarkTable3Statistical(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4Validation regenerates Table 4 (analytic models vs
// Monte Carlo).
func BenchmarkTable4Validation(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure1LeakageDist regenerates Figure 1 (leakage
// distribution, lognormal fit vs MC histogram).
func BenchmarkFigure1LeakageDist(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure2DelayDist regenerates Figure 2 (delay distribution
// before/after statistical optimization).
func BenchmarkFigure2DelayDist(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3Tradeoff regenerates Figure 3 (q99 leakage vs delay
// target for both optimizers).
func BenchmarkFigure3Tradeoff(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4SigmaSweep regenerates Figure 4 (statistical
// advantage vs variation magnitude).
func BenchmarkFigure4SigmaSweep(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5YieldCurves regenerates Figure 5 (timing-yield
// curves of both optimized designs).
func BenchmarkFigure5YieldCurves(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6Scaling regenerates Figure 6 (statistical advantage
// across technology nodes).
func BenchmarkFigure6Scaling(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkAblationMoves regenerates ablation A1 (move-set
// contribution).
func BenchmarkAblationMoves(b *testing.B) { runExperiment(b, "a1") }

// BenchmarkAblationCorrelation regenerates ablation A2 (variation
// decomposition).
func BenchmarkAblationCorrelation(b *testing.B) { runExperiment(b, "a2") }

// BenchmarkAblationLognormalSum regenerates ablation A3 (exact vs
// factored lognormal sum).
func BenchmarkAblationLognormalSum(b *testing.B) { runExperiment(b, "a3") }

// BenchmarkAblationAnnealing regenerates ablation A4 (greedy vs
// simulated annealing).
func BenchmarkAblationAnnealing(b *testing.B) { runExperiment(b, "a4") }

// BenchmarkAblationSampling regenerates ablation A5 (plain MC vs
// Latin Hypercube sampling).
func BenchmarkAblationSampling(b *testing.B) { runExperiment(b, "a5") }

// BenchmarkExtensionABB regenerates extension E1 (adaptive body bias
// on top of both optimizers).
func BenchmarkExtensionABB(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkExtensionStandbyVector regenerates extension E2
// (state-dependent standby-vector selection).
func BenchmarkExtensionStandbyVector(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkExtensionDualFront regenerates extension E3 (the
// delay-under-leakage-budget Pareto front).
func BenchmarkExtensionDualFront(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkExtensionTemperature regenerates extension E4 (the
// operating-temperature sweep).
func BenchmarkExtensionTemperature(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkSequentialTable regenerates Table S1 (the headline
// comparison on sequential ISCAS89-class circuits).
func BenchmarkSequentialTable(b *testing.B) { runExperiment(b, "s1") }

// ---- micro-benchmarks of the analysis kernels ----

// BenchmarkSTA measures one full deterministic timing analysis.
func BenchmarkSTA(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(d, 1e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSTA measures one full statistical timing analysis
// (canonical forms + Clark maxes).
func BenchmarkSSTA(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ssta.Analyze(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakageExact measures the O(n²k) reference lognormal sum.
func BenchmarkLeakageExact(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := leakage.Exact(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeakageAccumulatorUpdate measures one incremental
// optimizer-style update + percentile query.
func BenchmarkLeakageAccumulatorUpdate(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	acc, err := leakage.NewAccumulator(d)
	if err != nil {
		b.Fatal(err)
	}
	id := d.Circuit.Outputs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Update(id)
		if q := acc.Quantile(0.99); q <= 0 {
			b.Fatal("bad quantile")
		}
	}
}

// BenchmarkSSTAIncrementalUpdate measures one incremental re-timing
// after a single gate change (vs BenchmarkSSTA for the full pass).
func BenchmarkSSTAIncrementalUpdate(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	inc, err := ssta.NewIncremental(d)
	if err != nil {
		b.Fatal(err)
	}
	id := d.Circuit.Outputs()[0]
	sizes := d.Lib.Sizes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.SetSize(id, sizes[1+i%2]); err != nil {
			b.Fatal(err)
		}
		inc.Update(id)
	}
}

// BenchmarkEngineIncrementalVsFull compares one optimizer-style
// evaluation step through the engine — apply a move, read the delay
// and leakage percentiles off the incrementally maintained caches,
// revert — against the same step with from-scratch analyses
// (ssta.Analyze + a fresh leakage.Accumulator) per move. The ratio of
// the two is the engine's per-move speedup (recorded in
// EXPERIMENTS.md).
func BenchmarkEngineIncrementalVsFull(b *testing.B) {
	setup := func(b *testing.B) (*engine.Engine, []engine.Move) {
		d, err := fixture.Suite("s1908")
		if err != nil {
			b.Fatal(err)
		}
		e, err := engine.New(d, engine.Config{TmaxPs: 1000})
		if err != nil {
			b.Fatal(err)
		}
		var moves []engine.Move
		for _, id := range d.Circuit.Outputs() {
			sw, err := engine.NewVthSwap(d, id, tech.HighVth)
			if err != nil {
				b.Fatal(err)
			}
			moves = append(moves, sw)
			if up, ok := engine.NewUpsize(d, id); ok {
				moves = append(moves, up)
			}
		}
		return e, moves
	}

	b.Run("incremental", func(b *testing.B) {
		e, moves := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mv := moves[i%len(moves)]
			if err := e.Apply(mv); err != nil {
				b.Fatal(err)
			}
			if _, err := e.DelayQuantile(0.99); err != nil {
				b.Fatal(err)
			}
			if _, err := e.LeakQuantile(0.99); err != nil {
				b.Fatal(err)
			}
			if err := e.Revert(mv); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("full", func(b *testing.B) {
		e, moves := setup(b)
		d := e.Design()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mv := moves[i%len(moves)]
			if err := mv.Apply(d); err != nil {
				b.Fatal(err)
			}
			sr, err := ssta.Analyze(d)
			if err != nil {
				b.Fatal(err)
			}
			if q := sr.Quantile(0.99); q <= 0 {
				b.Fatal("bad delay quantile")
			}
			acc, err := leakage.NewAccumulator(d)
			if err != nil {
				b.Fatal(err)
			}
			if q := acc.Quantile(0.99); q <= 0 {
				b.Fatal("bad leak quantile")
			}
			if err := mv.Revert(d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineScoreAll measures one parallel scoring sweep of every
// PO-gate candidate through the worker-pool ScoreAll path.
func BenchmarkEngineScoreAll(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(d, engine.Config{TmaxPs: 1000})
	if err != nil {
		b.Fatal(err)
	}
	var moves []engine.Move
	for _, id := range d.Circuit.Outputs() {
		sw, err := engine.NewVthSwap(d, id, tech.HighVth)
		if err != nil {
			b.Fatal(err)
		}
		moves = append(moves, sw)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ScoreAll(moves); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarlo100 measures 100 Monte Carlo dies end to end.
func BenchmarkMonteCarlo100(b *testing.B) {
	d, err := fixture.Suite("s1908")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := montecarlo.Run(d, montecarlo.Config{Samples: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerStatistical measures a full statistical
// optimization of s432.
// BenchmarkYieldISVsPlain compares the cost of estimating a
// Y ≈ 99.9% timing yield to equal confidence: "plain" spends the full
// 2000-sample budget, "is" grows an importance-sampled budget only
// until its standard error matches the plain run's binomial SE. The
// samples/op metric is the demonstration — IS reaches the plain
// confidence width with an order of magnitude fewer samples.
func BenchmarkYieldISVsPlain(b *testing.B) {
	d, err := fixture.Suite("s880")
	if err != nil {
		b.Fatal(err)
	}
	sr, err := ssta.Analyze(d)
	if err != nil {
		b.Fatal(err)
	}
	tmax := sr.Quantile(0.999)
	const plainN = 2000
	pf := 1 - sr.Yield(tmax)
	targetSE := math.Sqrt(pf * (1 - pf) / plainN)
	shift := sr.ISShift(tmax)

	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := montecarlo.Run(d, montecarlo.Config{Samples: plainN, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := yield.TimingIS(res, tmax); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(plainN, "samples/op")
	})
	b.Run("is", func(b *testing.B) {
		b.ReportAllocs()
		var used int
		for i := 0; i < b.N; i++ {
			total := &montecarlo.Result{}
			for batch, n := 0, 25; ; batch++ {
				res, err := montecarlo.Run(d, montecarlo.Config{
					Samples: n, Seed: stats.StreamSeed(int64(i+1), batch),
					Sampling: montecarlo.ImportanceSampling, TmaxPs: tmax, Shift: shift})
				if err != nil {
					b.Fatal(err)
				}
				if err := total.Append(res); err != nil {
					b.Fatal(err)
				}
				est, err := yield.TimingIS(total, tmax)
				if err != nil {
					b.Fatal(err)
				}
				have := len(total.DelaysPs)
				if (est.StdErr > 0 && est.StdErr <= targetSE) || have >= plainN {
					used = have
					break
				}
				n = have
			}
		}
		b.ReportMetric(float64(used), "samples/op")
	})
}

func BenchmarkOptimizerStatistical(b *testing.B) {
	base, err := fixture.Suite("s432")
	if err != nil {
		b.Fatal(err)
	}
	ref := base.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		b.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := opt.Statistical(d, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerDeterministic measures a full deterministic
// optimization of s432.
func BenchmarkOptimizerDeterministic(b *testing.B) {
	base, err := fixture.Suite("s432")
	if err != nil {
		b.Fatal(err)
	}
	ref := base.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		b.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := base.Clone()
		if _, err := opt.Deterministic(d, o); err != nil {
			b.Fatal(err)
		}
	}
}
