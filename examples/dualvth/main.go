// Dual-Vth optimization walkthrough: run the corner-based
// deterministic baseline and the paper's statistical optimizer on the
// same circuit at the same delay constraint, and compare what each
// ships — the headline experiment as a standalone program.
//
//	go run ./examples/dualvth
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/montecarlo"
	"repro/internal/opt"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	const circuit = "s1908"

	cfg, err := bench.SuiteConfig(circuit)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := variation.New(variation.Default(params.LeffNom))
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.NewDesign(c, lib, vm)
	if err != nil {
		log.Fatal(err)
	}

	// Normalize the constraint to the circuit's own speed.
	ref := base.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		log.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	fmt.Printf("%s: %d gates, Dmin %.0f ps, Tmax %.0f ps, yield target %.0f%%\n\n",
		circuit, c.NumGates(), dmin, o.TmaxPs, 100*o.YieldTarget)

	// Deterministic: designs against the 3σ systematic corner.
	det := base.Clone()
	dres, err := opt.Deterministic(det, o)
	if err != nil {
		log.Fatal(err)
	}
	dEval, err := opt.EvaluateStatistical(det, o)
	if err != nil {
		log.Fatal(err)
	}
	show("deterministic (corner)", det, dres.Moves, dEval, o)

	// Statistical: designs against the actual timing yield.
	stat := base.Clone()
	sres, err := opt.Statistical(stat, o)
	if err != nil {
		log.Fatal(err)
	}
	show("statistical (paper)", stat, sres.Moves, sres, o)

	fmt.Printf("q99 leakage improvement of statistical over deterministic: %.1f%%\n",
		100*(1-sres.LeakPctNW/dEval.LeakPctNW))
}

func show(label string, d *core.Design, moves int, ev *opt.StatResult, o opt.Options) {
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	mcy, err := mc.TimingYield(o.TmaxPs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d moves, %d/%d HVT, avg size %.2f\n",
		label, moves, d.CountHVT(), d.Circuit.NumGates(), d.AvgSize())
	fmt.Printf("  leakage: mean %.0f nW, q99 %.0f nW\n", ev.LeakMeanNW, ev.LeakPctNW)
	fmt.Printf("  timing:  mean %.0f ps, sigma %.0f ps, yield(SSTA) %.4f, yield(MC) %.4f\n\n",
		ev.DelayMeanPs, ev.DelaySigmaPs, ev.YieldAtTmax, mcy)
}
