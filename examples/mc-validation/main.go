// Monte Carlo validation: compare the analytic engines (SSTA delay
// distribution, lognormal-matched leakage distribution) against brute
// force on one circuit — the Table-4 experiment as a program, with a
// small text histogram so the lognormal skew is visible.
//
//	go run ./examples/mc-validation
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/montecarlo"
	"repro/internal/ssta"
	"repro/internal/stats"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	const circuit = "s1355"
	const samples = 5000

	cfg, err := bench.SuiteConfig(circuit)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := variation.New(variation.Default(params.LeffNom))
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	sr, err := ssta.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	an, err := leakage.Exact(d)
	if err != nil {
		log.Fatal(err)
	}
	analytic := time.Since(t0)

	t1 := time.Now()
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: samples, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	mcTime := time.Since(t1)

	ds := mc.DelaySummary()
	ls := mc.LeakSummary()
	fmt.Printf("%s, %d gates, %d MC samples\n\n", circuit, c.NumGates(), samples)
	fmt.Printf("%-22s %-12s %-12s %-8s\n", "metric", "analytic", "MC", "error")
	row := func(name string, a, m float64) {
		fmt.Printf("%-22s %-12.1f %-12.1f %+.1f%%\n", name, a, m, 100*(a-m)/m)
	}
	row("delay mean [ps]", sr.Delay.Mean, ds.Mean)
	row("delay sigma [ps]", sr.Delay.Sigma(), ds.StdDev)
	row("delay q99 [ps]", sr.Quantile(0.99), mc.DelayQuantile(0.99))
	row("leak mean [nW]", an.MeanNW, ls.Mean)
	row("leak sigma [nW]", an.StdNW, ls.StdDev)
	row("leak median [nW]", an.Quantile(0.5), mc.LeakQuantile(0.5))
	row("leak q99 [nW]", an.Quantile(0.99), mc.LeakQuantile(0.99))
	fmt.Printf("\nruntime: analytic %.1f ms, MC %.0f ms (%.0fx)\n\n",
		float64(analytic.Microseconds())/1000, float64(mcTime.Microseconds())/1000,
		float64(mcTime)/float64(analytic))

	// Text histogram of the leakage samples with the lognormal fit.
	fmt.Println("total leakage distribution (MC '#' vs lognormal fit '·'):")
	hist, err := stats.NewHistogram(ls.Min*0.98, ls.P99*1.25, 20)
	if err != nil {
		log.Fatal(err)
	}
	hist.AddAll(mc.LeaksNW)
	maxD := 0.0
	for i := range hist.Counts {
		if v := hist.Density(i); v > maxD {
			maxD = v
		}
	}
	for i := range hist.Counts {
		x := hist.BinCenter(i)
		mcBar := int(hist.Density(i) / maxD * 50)
		fit := lognormalDensity(an, x) / maxD * 50
		line := []rune(strings.Repeat("#", mcBar) + strings.Repeat(" ", 55-mcBar))
		if f := int(fit); f >= 0 && f < len(line) {
			line[f] = '·'
		}
		fmt.Printf("%8.0f nW |%s\n", x, string(line))
	}
}

func lognormalDensity(an *leakage.Analysis, x float64) float64 {
	if x <= an.GateLeakNW {
		return 0
	}
	z := x - an.GateLeakNW
	lf := an.Fit
	u := (math.Log(z) - lf.Mu) / lf.Sigma
	return stats.NormalPDF(u) / (z * lf.Sigma)
}
