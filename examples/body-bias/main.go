// Body bias: compose the design-time statistical optimizer with
// post-silicon adaptive body bias (ABB). Each fabricated die's
// systematic corner is observable after manufacturing; a single
// body-bias voltage per die re-centers every threshold — reverse bias
// de-leaks fast dies, forward bias rescues slow ones. The combination
// "statistical design + per-die ABB" is the strongest configuration in
// this repository.
//
//	go run ./examples/body-bias
package main

import (
	"fmt"
	"log"

	"repro/internal/abb"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	const circuit = "s880"
	const dies = 1000

	cfg, err := bench.SuiteConfig(circuit)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := variation.New(variation.Default(params.LeffNom))
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.NewDesign(c, lib, vm)
	if err != nil {
		log.Fatal(err)
	}
	ref := base.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		log.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)

	st := base.Clone()
	if _, err := opt.Statistical(st, o); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s statistically optimized (Tmax %.0f ps); sampling %d dies with ABB…\n\n",
		circuit, o.TmaxPs, dies)

	res, err := abb.Run(st, abb.DefaultConfig(), o.TmaxPs, dies, 42)
	if err != nil {
		log.Fatal(err)
	}
	nb, b := res.LeakSummaries()
	fmt.Printf("%-26s %-12s %-12s\n", "", "no ABB", "with ABB")
	fmt.Printf("%-26s %-12.4f %-12.4f\n", "timing yield", res.YieldNoBias(o.TmaxPs), res.YieldBiased())
	fmt.Printf("%-26s %-12.0f %-12.0f\n", "leak mean [nW]", nb.Mean, b.Mean)
	fmt.Printf("%-26s %-12.0f %-12.0f\n", "leak sigma [nW]", nb.StdDev, b.StdDev)
	fmt.Printf("%-26s %-12.0f %-12.0f\n", "leak p99 [nW]", nb.P99, b.P99)

	// Bias usage breakdown.
	var rev, fwd, zero int
	for _, die := range res.Dies {
		switch {
		case die.BiasV > 1e-6:
			rev++
		case die.BiasV < -1e-6:
			fwd++
		default:
			zero++
		}
	}
	fmt.Printf("\nbias usage: %d reverse (de-leak fast dies), %d forward (rescue slow dies), %d none\n",
		rev, fwd, zero)
}
