// Quickstart: build a tiny circuit by hand, bind it to the 100nm
// dual-Vth library and variation model, and look at its timing and
// leakage — nominal, statistical, and Monte Carlo.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/montecarlo"
	"repro/internal/ssta"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	// 1. A netlist. Here: the classic c17 from its .bench text; you can
	// also build circuits programmatically with logic.New/AddGate.
	c, err := bench.ParseString("c17", bench.C17)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Technology: the 100nm-class dual-Vth cell library and the
	// default variation model (6% σ(Leff): 40% die-to-die, 40%
	// spatially correlated, 20% independent).
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := variation.New(variation.Default(params.LeffNom))
	if err != nil {
		log.Fatal(err)
	}

	// 3. A design point: every gate starts low-Vth at minimum size.
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Deterministic timing.
	timing, err := sta.Analyze(d, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal delay: %.1f ps (critical path %v)\n",
		timing.MaxDelay, pathNames(d, timing))

	// 5. Statistical timing: the circuit delay as a distribution.
	sr, err := ssta.Analyze(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical delay: mean %.1f ps, sigma %.1f ps, 99th pct %.1f ps\n",
		sr.Delay.Mean, sr.Delay.Sigma(), sr.Quantile(0.99))

	// 6. Statistical leakage: nominal vs the lognormal reality.
	an, err := leakage.Exact(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leakage: nominal %.1f nW, statistical mean %.1f nW, 99th pct %.1f nW\n",
		d.TotalLeak(), an.MeanNW, an.Quantile(0.99))

	// 7. Swap one gate to high Vth and watch the trade-off.
	g, _ := c.GateByName("G10")
	if err := d.SetVth(g.ID, tech.HighVth); err != nil {
		log.Fatal(err)
	}
	timing2, err := sta.Analyze(d, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	an2, err := leakage.Exact(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after G10 → HVT: delay %.1f ps (%+.1f), q99 leakage %.1f nW (%+.1f)\n",
		timing2.MaxDelay, timing2.MaxDelay-timing.MaxDelay,
		an2.Quantile(0.99), an2.Quantile(0.99)-an.Quantile(0.99))

	// 8. Monte Carlo ground truth.
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 5000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo (5000 dies): delay mean %.1f ps, leak q99 %.1f nW\n",
		mc.DelaySummary().Mean, mc.LeakQuantile(0.99))
}

func pathNames(d *core.Design, r *sta.Result) []string {
	var names []string
	for _, id := range r.CriticalPath(d) {
		names = append(names, d.Circuit.Gate(id).Name)
	}
	return names
}
