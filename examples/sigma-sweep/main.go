// Sigma sweep: how the statistical optimizer's advantage grows with
// process-variation magnitude (the Figure-4 experiment as a program).
// At low variation the corner-based deterministic flow is barely
// pessimistic and the two converge; as σ(Leff) grows, the corner
// over-constrains more and more and the statistical flow pulls ahead.
//
//	go run ./examples/sigma-sweep
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	const circuit = "s880"

	cfg, err := bench.SuiteConfig(circuit)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: statistical-vs-deterministic q99 leakage as variation grows\n\n", circuit)
	fmt.Printf("%-12s %-14s %-14s %-12s\n", "sigma(L)/L", "det q99 [nW]", "stat q99 [nW]", "improvement")
	for _, sigPct := range []float64{2, 4, 6, 8, 10} {
		vcfg := variation.Default(params.LeffNom)
		vcfg.SigmaLNm = sigPct / 100 * params.LeffNom
		vm, err := variation.New(vcfg)
		if err != nil {
			log.Fatal(err)
		}
		base, err := core.NewDesign(c.Clone(), lib, vm)
		if err != nil {
			log.Fatal(err)
		}
		ref := base.Clone()
		dmin, err := opt.MinimumDelay(ref)
		if err != nil {
			log.Fatal(err)
		}
		o := opt.DefaultOptions(1.3 * dmin)

		det := base.Clone()
		if _, err := opt.Deterministic(det, o); err != nil {
			log.Fatal(err)
		}
		dEval, err := opt.EvaluateStatistical(det, o)
		if err != nil {
			log.Fatal(err)
		}
		stat := base.Clone()
		sres, err := opt.Statistical(stat, o)
		if err != nil {
			log.Fatal(err)
		}
		if !sres.Feasible {
			fmt.Printf("%-12s statistical infeasible at this variation\n", fmt.Sprintf("%.0f%%", sigPct))
			continue
		}
		fmt.Printf("%-12s %-14.0f %-14.0f %.1f%%\n",
			fmt.Sprintf("%.0f%%", sigPct), dEval.LeakPctNW, sres.LeakPctNW,
			100*(1-sres.LeakPctNW/dEval.LeakPctNW))
	}
}
