// Standby vector selection: after the statistical optimizer has set
// the Vth/size assignment, the remaining leakage still depends on the
// logic state the circuit parks in during standby — series transistor
// stacks with several OFF devices leak far less (the stack effect).
// This example searches random input vectors for a low-leakage standby
// state and reports the spread.
//
//	go run ./examples/standby-vector
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/opt"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	const circuit = "s432"

	cfg, err := bench.SuiteConfig(circuit)
	if err != nil {
		log.Fatal(err)
	}
	c, err := bench.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	params := tech.Default100nm()
	lib, err := tech.NewLibrary(params)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := variation.New(variation.Default(params.LeffNom))
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		log.Fatal(err)
	}

	// Optimize first: standby-vector selection is the last knob, after
	// the assignment is fixed.
	ref := d.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		log.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	if _, err := opt.Statistical(d, o); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s statistically optimized: average-state leakage %.0f nW\n\n", circuit, d.TotalLeak())

	for _, trials := range []int{16, 64, 256, 1024} {
		res, err := leakage.FindMinLeakVector(d, trials, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best of %4d random vectors: %.0f nW (%.1f%% below average state; worst seen %.0f nW)\n",
			trials, res.LeakNW, 100*(1-res.LeakNW/d.TotalLeak()), res.WorstNW)
	}

	res, err := leakage.FindMinLeakVector(d, 1024, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwinning vector (PI order): ")
	for _, b := range res.Vector {
		if b {
			fmt.Print("1")
		} else {
			fmt.Print("0")
		}
	}
	fmt.Println()
}
