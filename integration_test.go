package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/libfile"
	"repro/internal/montecarlo"
	"repro/internal/opt"
	"repro/internal/ssta"
	"repro/internal/tech"
	"repro/internal/variation"
)

// TestFullPipelineCombinational drives the complete flow a user would
// run: generate a benchmark, round-trip it through the .bench file
// format on disk, bind it to a technology loaded from a tech file,
// optimize statistically, and verify the shipped claims with Monte
// Carlo.
func TestFullPipelineCombinational(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist the netlist.
	cfg, err := bench.SuiteConfig("s432")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := bench.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s432.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Parse it back from disk.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := bench.Parse("s432", rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != gen.NumGates() {
		t.Fatalf("file round trip changed gate count: %d vs %d", c.NumGates(), gen.NumGates())
	}

	// 3. Technology from a tech file (overriding the 100nm preset).
	techSrc := "technology integration-test\nvth_high 0.34\n"
	tf, err := libfile.Parse(strings.NewReader(techSrc), tech.Default100nm())
	if err != nil {
		t.Fatal(err)
	}
	lib, err := tf.Library()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := variation.New(variation.Default(lib.P.LeffNom))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Optimize.
	ref := d.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	res, err := opt.Statistical(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("optimization infeasible: %+v", res)
	}

	// 5. Verify the claims with the golden evaluator.
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 1500, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if y := mustYield(t, mc, o.TmaxPs); y < o.YieldTarget-0.03 {
		t.Errorf("MC yield %g violates the shipped claim (target %g)", y, o.YieldTarget)
	}
	an, err := leakage.Exact(d)
	if err != nil {
		t.Fatal(err)
	}
	mcQ := mc.LeakQuantile(0.99)
	if rel := (an.Quantile(0.99) - mcQ) / mcQ; rel > 0.15 || rel < -0.15 {
		t.Errorf("analytic q99 %g vs MC %g (%.1f%%)", an.Quantile(0.99), mcQ, rel*100)
	}
}

// TestFullPipelineSequential runs the same end-to-end flow on a
// sequential circuit, through the file format, with the clock-period
// constraint.
func TestFullPipelineSequential(t *testing.T) {
	scfg, err := bench.SeqSuiteConfig("q344")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := bench.GenerateSeq(scfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bench.Write(&buf, gen); err != nil {
		t.Fatal(err)
	}
	c, err := bench.ParseString("q344", buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDffs() != gen.NumDffs() {
		t.Fatalf("round trip changed FF count: %d vs %d", c.NumDffs(), gen.NumDffs())
	}
	lib, err := tech.NewLibrary(tech.Default100nm())
	if err != nil {
		t.Fatal(err)
	}
	vm, err := variation.New(variation.Default(lib.P.LeffNom))
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		t.Fatal(err)
	}
	ref := d.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		t.Fatal(err)
	}
	o := opt.DefaultOptions(1.3 * dmin)
	res, err := opt.Statistical(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("sequential optimization infeasible: yield %g", res.YieldAtTmax)
	}
	sr, err := ssta.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	if y := sr.Yield(o.TmaxPs); y < o.YieldTarget-1e-9 {
		t.Errorf("SSTA yield %g below target after optimization", y)
	}
	mc, err := montecarlo.Run(d, montecarlo.Config{Samples: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if y := mustYield(t, mc, o.TmaxPs); y < o.YieldTarget-0.03 {
		t.Errorf("MC clock-period yield %g far below target", y)
	}
}

// mustYield unwraps TimingYield, failing the test on a malformed result.
func mustYield(t *testing.T, r *montecarlo.Result, tmax float64) float64 {
	t.Helper()
	y, err := r.TimingYield(tmax)
	if err != nil {
		t.Fatal(err)
	}
	return y
}
