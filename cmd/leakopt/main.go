// Command leakopt runs the statistical (and optionally the
// deterministic baseline) leakage optimizer on one circuit and prints
// a before/after scoreboard.
//
// Usage:
//
//	leakopt -circuit s880                 # synthetic suite circuit
//	leakopt -bench path/to/c432.bench     # real ISCAS85 netlist file
//	leakopt -bench path/to/design.v       # structural Verilog (by extension)
//	leakopt -circuit s880 -mode both -tmax-factor 1.25 -samples 3000
//	leakopt -circuit s432 -mode stat -corners vl,vh -temps 0,110
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/leakage"
	"repro/internal/libfile"
	"repro/internal/logic"
	"repro/internal/montecarlo"
	"repro/internal/opt"
	"repro/internal/scenario"
	"repro/internal/ssta"
	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/verilog"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "synthetic suite circuit name (s432 … s7552, q344 … q5378)")
		benchFile  = flag.String("bench", "", "path to a .bench netlist file")
		preset     = flag.String("preset", "100nm", "technology preset: 130nm, 100nm, 70nm")
		techFile   = flag.String("tech", "", "path to a technology file overriding the preset (see internal/libfile)")
		mode       = flag.String("mode", "both", "optimizer: det, stat, or both")
		tmaxFactor = flag.Float64("tmax-factor", 1.3, "delay constraint as a multiple of Dmin")
		yieldTgt   = flag.Float64("yield", 0.99, "timing-yield target for the statistical optimizer")
		pctile     = flag.Float64("percentile", 0.99, "leakage percentile objective")
		samples    = flag.Int("samples", 2000, "Monte Carlo samples for the final scoreboard (0 = skip MC)")
		seed       = flag.Int64("seed", 1, "Monte Carlo seed")
		sampling   = flag.String("sampling", "plain", "Monte Carlo sampling: plain, lhs, or is (importance sampling aimed at Tmax)")

		corners     = flag.String("corners", "", "voltage corners, comma-separated (vl, vn, vh); with -temps spans a scenario matrix")
		temps       = flag.String("temps", "", "operating temperatures [°C], comma-separated")
		biasDomains = flag.Int("bias-domains", 0, "body-bias well islands (0 = no bias axis)")
		biasV       = flag.String("bias", "", "per-domain reverse body bias [V], comma-separated (one value broadcasts)")
		aggregate   = flag.String("aggregate", "", "corner aggregation: worst (default) or weighted")
	)
	flag.Parse()

	smode, err := montecarlo.ParseSampling(*sampling)
	if err != nil {
		fatal(err)
	}
	c, err := loadCircuit(*circuit, *benchFile)
	if err != nil {
		fatal(err)
	}
	p, err := tech.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	lib, err := loadLibrary(p, *techFile)
	if err != nil {
		fatal(err)
	}
	p = lib.P
	vm, err := variation.New(variation.Default(p.LeffNom))
	if err != nil {
		fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		fatal(err)
	}

	ref := d.Clone()
	dmin, err := opt.MinimumDelay(ref)
	if err != nil {
		fatal(err)
	}
	o := opt.DefaultOptions(*tmaxFactor * dmin)
	o.YieldTarget = *yieldTgt
	o.LeakPercentile = *pctile

	spec, err := scenario.ParseFlags(*corners, *temps, *biasDomains, *biasV, *aggregate)
	if err != nil {
		fatal(err)
	}
	if !spec.IsZero() {
		if o.Scenario, err = spec.Build(); err != nil {
			fatal(err)
		}
	}

	st, err := c.ComputeStats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("circuit %s: %d gates, %d PIs, %d POs, depth %d\n",
		c.Name, st.Gates, st.Inputs, st.Outputs, st.Depth)
	fmt.Printf("Dmin = %.1f ps, Tmax = %.1f ps, yield target = %.2f, objective = q%g leakage\n",
		dmin, o.TmaxPs, o.YieldTarget, 100*(*pctile))
	if o.Scenario != nil {
		names := make([]string, len(o.Scenario.Corners))
		for i, c := range o.Scenario.Corners {
			names[i] = c.Name
		}
		fmt.Printf("scenario matrix: %d corners [%s], %s aggregation\n",
			len(names), strings.Join(names, " "), o.Scenario.Aggregate)
	}
	fmt.Println()

	printState("unoptimized (min-size, all LVT)", d, o, *samples, *seed, smode)

	var infeasible []string
	if *mode == "det" || *mode == "both" {
		det := d.Clone()
		res, err := opt.Deterministic(det, o)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("deterministic (corner %.1fσ): %d moves (%d ups, %d swaps, %d downs), feasible=%v, %.2fs\n",
			o.CornerSigma, res.Moves, res.SizeUps, res.VthSwaps, res.SizeDowns,
			res.Feasible, res.Runtime.Seconds())
		printCorners(res.Corners)
		printState("deterministic result", det, o, *samples, *seed, smode)
		if !res.Feasible {
			infeasible = append(infeasible, "deterministic")
		}
	}
	if *mode == "stat" || *mode == "both" {
		stat := d.Clone()
		res, err := opt.Statistical(stat, o)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("statistical (yield ≥ %.2f): %d moves (%d ups, %d swaps, %d downs), feasible=%v, %.2fs\n",
			o.YieldTarget, res.Moves, res.SizeUps, res.VthSwaps, res.SizeDowns,
			res.Feasible, res.Runtime.Seconds())
		printCorners(res.Corners)
		printState("statistical result", stat, o, *samples, *seed, smode)
		if !res.Feasible {
			infeasible = append(infeasible, "statistical")
		}
	}
	if len(infeasible) > 0 {
		fatal(fmt.Errorf("constraint not met by: %s (relax -tmax-factor or -yield)",
			strings.Join(infeasible, ", ")))
	}
}

// loadLibrary applies an optional technology file over the preset.
func loadLibrary(p *tech.Params, techPath string) (*tech.Library, error) {
	if techPath == "" {
		return tech.NewLibrary(p)
	}
	f, err := os.Open(techPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tf, err := libfile.Parse(f, p)
	if err != nil {
		return nil, err
	}
	return tf.Library()
}

func loadCircuit(suiteName, path string) (*logic.Circuit, error) {
	switch {
	case suiteName != "" && path != "":
		return nil, fmt.Errorf("leakopt: use -circuit or -bench, not both")
	case suiteName != "":
		if cfg, err := bench.SuiteConfig(suiteName); err == nil {
			return bench.Generate(cfg)
		}
		cfg, err := bench.SeqSuiteConfig(suiteName)
		if err != nil {
			return nil, err
		}
		return bench.GenerateSeq(cfg)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(path, ".v") || strings.HasSuffix(path, ".sv") {
			return verilog.Parse(f)
		}
		return bench.Parse(path, f)
	default:
		return nil, fmt.Errorf("leakopt: need -circuit or -bench (see -h)")
	}
}

func printState(label string, d *core.Design, o opt.Options, samples int, seed int64, smode montecarlo.Sampling) {
	sr, err := ssta.Analyze(d)
	if err != nil {
		fatal(err)
	}
	an, err := leakage.Exact(d)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %s:\n", label)
	fmt.Printf("    delay: mean %.1f ps, sigma %.1f ps, q99 %.1f ps, yield(Tmax) %.4f\n",
		sr.Delay.Mean, sr.Delay.Sigma(), sr.Quantile(0.99), sr.Yield(o.TmaxPs))
	fmt.Printf("    leakage: nominal %.0f nW, mean %.0f nW, q%.0f %.0f nW\n",
		d.TotalLeak(), an.MeanNW, 100*o.LeakPercentile, an.Quantile(o.LeakPercentile))
	fmt.Printf("    assignment: %d/%d HVT, avg size %.2f\n",
		d.CountHVT(), d.Circuit.NumGates(), d.AvgSize())
	if samples > 0 {
		mc, err := montecarlo.Run(d, montecarlo.Config{
			Samples: samples, Seed: seed, Sampling: smode, TmaxPs: o.TmaxPs,
		})
		if err != nil {
			fatal(err)
		}
		y, err := mc.TimingYield(o.TmaxPs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("    MC (%d dies, %s): yield(Tmax) %.4f, leak mean %.0f nW, leak q99 %.0f nW\n",
			samples, smode, y, mc.LeakMean(), mc.LeakQuantile(0.99))
		if smode == montecarlo.ImportanceSampling {
			fmt.Printf("    IS diagnostics: ESS %.0f of %d, weight variance %.3g\n",
				mc.ESS(), samples, mc.WeightVariance())
		}
	}
	fmt.Println()
}

// printCorners lists the per-corner end-state scoreboard of a
// scenario-family run (empty outside scenario mode).
func printCorners(cs []engine.CornerMetrics) {
	for _, c := range cs {
		fmt.Printf("  corner %-10s yield(Tmax) %.4f, leak q %.0f nW, leak mean %.0f nW, corner delay %.1f ps\n",
			c.Name+":", c.YieldAtTmax, c.LeakPctNW, c.LeakMeanNW, c.CornerDelayPs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "leakopt:", err)
	os.Exit(1)
}
