// Command experiments regenerates the paper's tables, figures and
// ablations (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	experiments [flags] [id ...]
//
// With no IDs it runs everything in canonical order. Valid IDs:
// table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 a1 a2 a3.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/montecarlo"
	"repro/internal/scenario"
)

func main() {
	var (
		benchmarks = flag.String("benchmarks", strings.Join(exp.DefaultBenchmarks, ","),
			"comma-separated suite circuits for the per-benchmark experiments")
		tmaxFactor = flag.Float64("tmax-factor", 1.3, "delay constraint as a multiple of Dmin")
		samples    = flag.Int("samples", 2000, "Monte Carlo samples per evaluation")
		seed       = flag.Int64("seed", 1, "Monte Carlo seed")
		sampling   = flag.String("sampling", "plain", "Monte Carlo sampling: plain, lhs, or is (importance sampling aimed at each evaluation's Tmax)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")

		corners     = flag.String("corners", "", "scenario-table voltage corners, comma-separated (vl, vn, vh)")
		temps       = flag.String("temps", "", "scenario-table temperatures [°C], comma-separated")
		biasDomains = flag.Int("bias-domains", 0, "scenario-table body-bias well islands (0 = no bias axis)")
		bias        = flag.String("bias", "", "per-domain reverse body bias [V], comma-separated (one value broadcasts)")
		aggregate   = flag.String("aggregate", "", "corner aggregation: worst (default) or weighted")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	smode, err := montecarlo.ParseSampling(*sampling)
	if err != nil {
		fatal(err)
	}
	ctx := exp.NewContext(os.Stdout)
	ctx.TmaxFactor = *tmaxFactor
	ctx.MCSamples = *samples
	ctx.Seed = *seed
	ctx.Sampling = smode
	if *benchmarks != "" {
		ctx.Benchmarks = strings.Split(*benchmarks, ",")
	}
	spec, err := scenario.ParseFlags(*corners, *temps, *biasDomains, *bias, *aggregate)
	if err != nil {
		fatal(err)
	}
	if !spec.IsZero() {
		ctx.Scenario = spec
	}

	ids := flag.Args()
	if len(ids) == 0 {
		if err := ctx.RunAll(); err != nil {
			fatal(err)
		}
	} else {
		for _, id := range ids {
			if err := ctx.Run(id); err != nil {
				fatal(err)
			}
		}
	}
	if len(ctx.Infeasible) > 0 {
		fatal(fmt.Errorf("constraint missed in headline tables: %s (relax -tmax-factor)",
			strings.Join(ctx.Infeasible, "; ")))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
