// Command statleakctl is the operator CLI for statleakd — a single
// replica or a cluster coordinator; both speak the same /v1/jobs
// surface, so every subcommand works against either.
//
// Usage:
//
//	statleakctl [-addr http://localhost:8080] <command> [flags]
//
// Commands:
//
//	submit   submit a job (netlist file or named circuit) and print its status
//	status   print one job's status
//	watch    poll a job until it reaches a terminal state
//	result   fetch a done job's outcome JSON
//	cancel   cancel a job
//	jobs     list jobs (?state/?limit/?offset filters)
//	cluster  print the coordinator's ring + replica health (coordinator only)
//	health   print the daemon's /healthz payload
//
// Examples:
//
//	statleakctl -addr http://localhost:8090 submit -circuit s432 -key nightly-s432 -watch
//	statleakctl -addr http://localhost:8090 jobs -state running -limit 10
//	statleakctl -addr http://localhost:8090 cluster
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/server"
)

const maxBody = 16 << 20

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "statleakd (or coordinator) base URL")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	cl := &client{base: strings.TrimRight(*addr, "/"), hc: &http.Client{Timeout: *timeout}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, cl, args)
	case "status":
		err = cmdStatus(ctx, cl, args)
	case "watch":
		err = cmdWatch(ctx, cl, args)
	case "result":
		err = cmdGet(ctx, cl, args, "result", func(id string) string { return "/v1/jobs/" + id + "/result" })
	case "cancel":
		err = cmdCancel(ctx, cl, args)
	case "jobs":
		err = cmdJobs(ctx, cl, args)
	case "cluster":
		err = cl.getJSON(ctx, "/v1/cluster")
	case "health":
		err = cl.getJSON(ctx, "/healthz")
	default:
		usage()
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleakctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: statleakctl [-addr URL] <command> [flags]

commands:
  submit   -netlist FILE | -circuit NAME  [-format bench|verilog] [-name N]
           [-optimizer statistical|deterministic|anneal|dual] [-preset 100nm]
           [-key IDEMPOTENCY-KEY] [-mc-samples N] [-seed N] [-watch]
  status   JOB-ID
  watch    JOB-ID [-interval 1s]
  result   JOB-ID
  cancel   JOB-ID
  jobs     [-state pending|running|done|failed|cancelled] [-limit N] [-offset N]
  cluster
  health
`)
	flag.PrintDefaults()
}

// cmdSubmit builds a server.Request from flags, posts it, and
// optionally watches the job to completion.
func cmdSubmit(ctx context.Context, cl *client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		netlistPath = fs.String("netlist", "", "netlist file to submit (text is uploaded; the daemon never reads paths)")
		format      = fs.String("format", "", `netlist format: "bench" (default) or "verilog"`)
		circuit     = fs.String("circuit", "", "named synthetic circuit (s432…s7552, q344…q5378) instead of -netlist")
		name        = fs.String("name", "", "design label")
		preset      = fs.String("preset", "", "technology preset: 130nm, 100nm (default), 70nm")
		optimizer   = fs.String("optimizer", "", "statistical (default), deterministic, anneal, dual")
		key         = fs.String("key", "", "idempotency key: resubmissions with the same key return the existing job")
		mcSamples   = fs.Int("mc-samples", 0, "final Monte Carlo scoreboard sample count (0 disables)")
		seed        = fs.Int64("seed", 0, "Monte Carlo seed")
		maxRetries  = fs.Int("max-retries", 0, "retries after transient failures")
		timeoutSec  = fs.Float64("timeout-sec", 0, "per-attempt wall-clock cap [s]")
		watch       = fs.Bool("watch", false, "poll until the job reaches a terminal state")
		interval    = fs.Duration("interval", time.Second, "poll interval with -watch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := server.Request{
		Circuit:        *circuit,
		Format:         *format,
		Name:           *name,
		Preset:         *preset,
		Optimizer:      *optimizer,
		IdempotencyKey: *key,
		MCSamples:      *mcSamples,
		Seed:           *seed,
		MaxRetries:     *maxRetries,
		TimeoutSec:     *timeoutSec,
	}
	if *netlistPath != "" {
		b, err := os.ReadFile(*netlistPath)
		if err != nil {
			return err
		}
		req.Netlist = string(b)
	}
	if req.Netlist == "" && req.Circuit == "" {
		return errors.New("submit: one of -netlist or -circuit is required")
	}
	var st server.Status
	if err := cl.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return err
	}
	if !*watch {
		return printJSON(st)
	}
	fmt.Fprintf(os.Stderr, "submitted %s; watching\n", st.ID)
	return watchJob(ctx, cl, st.ID, *interval)
}

func cmdStatus(ctx context.Context, cl *client, args []string) error {
	if len(args) != 1 {
		return errors.New("status: want exactly one JOB-ID")
	}
	var st server.Status
	if err := cl.do(ctx, http.MethodGet, "/v1/jobs/"+args[0], nil, &st); err != nil {
		return err
	}
	return printJSON(st)
}

func cmdWatch(ctx context.Context, cl *client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", time.Second, "poll interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("watch: want exactly one JOB-ID")
	}
	return watchJob(ctx, cl, fs.Arg(0), *interval)
}

// watchJob polls the job's status until it goes terminal, echoing
// each state transition, then prints the final status (and, for done
// jobs, leaves the outcome to `statleakctl result`).
func watchJob(ctx context.Context, cl *client, id string, interval time.Duration) error {
	last := server.State("")
	for {
		var st server.Status
		if err := cl.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
			return err
		}
		if st.State != last {
			fmt.Fprintf(os.Stderr, "%s %s\n", st.ID, st.State)
			last = st.State
		}
		if st.State.Terminal() {
			return printJSON(st)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

func cmdGet(ctx context.Context, cl *client, args []string, what string, path func(string) string) error {
	if len(args) != 1 {
		return fmt.Errorf("%s: want exactly one JOB-ID", what)
	}
	return cl.getJSON(ctx, path(args[0]))
}

func cmdCancel(ctx context.Context, cl *client, args []string) error {
	if len(args) != 1 {
		return errors.New("cancel: want exactly one JOB-ID")
	}
	var st server.Status
	if err := cl.do(ctx, http.MethodDelete, "/v1/jobs/"+args[0], nil, &st); err != nil {
		return err
	}
	return printJSON(st)
}

func cmdJobs(ctx context.Context, cl *client, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	var (
		state  = fs.String("state", "", "filter by state")
		limit  = fs.Int("limit", 0, "page size (0 = everything)")
		offset = fs.Int("offset", 0, "page start")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := make([]string, 0, 3)
	if *state != "" {
		q = append(q, "state="+*state)
	}
	if *limit > 0 {
		q = append(q, fmt.Sprintf("limit=%d", *limit))
	}
	if *offset > 0 {
		q = append(q, fmt.Sprintf("offset=%d", *offset))
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + strings.Join(q, "&")
	}
	return cl.getJSON(ctx, path)
}

// client is a minimal JSON client over the daemon/coordinator API.
type client struct {
	base string
	hc   *http.Client
}

// do runs one JSON request; non-2xx responses become errors carrying
// the server's error message.
func (cl *client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
			State string `json:"state"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			if e.State != "" {
				return fmt.Errorf("%s: %s (state %s)", resp.Status, e.Error, e.State)
			}
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// getJSON fetches path and pretty-prints the response body as-is —
// used for payloads the CLI has no struct for (cluster info, health,
// outcomes, job listings).
func (cl *client) getJSON(ctx context.Context, path string) error {
	var v any
	if err := cl.do(ctx, http.MethodGet, path, nil, &v); err != nil {
		return err
	}
	return printJSON(v)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
