// Command statleaklint runs the repository's determinism/
// transactionality analyzer suite (internal/analysis/statleaklint).
//
// Standalone over package patterns (exit 1 on findings):
//
//	go run ./cmd/statleaklint ./...
//
// Or as a vet tool, speaking the cmd/go vet config protocol:
//
//	go build -o statleaklint ./cmd/statleaklint
//	go vet -vettool=$(pwd)/statleaklint ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/statleaklint"
)

// printVersion answers `-V=full` in the form cmd/go's toolID parser
// accepts: "<name> version devel buildID=<id>", so `go vet -vettool`
// keys its action cache on this binary's content and re-runs the
// suite when the analyzers change.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	name := strings.TrimSuffix(filepath.Base(exe), ".exe")
	if out, err := exec.Command("go", "tool", "buildid", exe).Output(); err == nil {
		if id := strings.TrimSpace(string(out)); id != "" {
			fmt.Printf("%s version devel buildID=%s\n", name, id)
			return
		}
	}
	fmt.Printf("%s version statleaklint-1\n", name)
}

func main() {
	var (
		versionFlag = flag.String("V", "", "print version (vet protocol)")
		flagsFlag   = flag.Bool("flags", false, "print flag definitions as JSON (vet protocol)")
		listFlag    = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: statleaklint [packages]   # standalone, default ./...\n"+
				"       statleaklint <file>.cfg   # go vet -vettool protocol\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion() // cmd/go keys its action cache on this line
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range statleaklint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMode(args[0]) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, statleaklint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "statleaklint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
