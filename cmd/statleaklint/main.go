// Command statleaklint runs the repository's determinism/
// transactionality/concurrency analyzer suite
// (internal/analysis/statleaklint).
//
// Standalone over package patterns (exit 1 on findings):
//
//	go run ./cmd/statleaklint ./...
//
// Machine-readable reports (suppressed findings included, marked):
//
//	go run ./cmd/statleaklint -json ./...
//	go run ./cmd/statleaklint -sarif -out lint.sarif ./...
//
// Audit the in-source //lint:ignore suppressions:
//
//	go run ./cmd/statleaklint -suppressions ./...
//
// Or as a vet tool, speaking the cmd/go vet config protocol:
//
//	go build -o statleaklint ./cmd/statleaklint
//	go vet -vettool=$(pwd)/statleaklint ./...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/statleaklint"
)

// printVersion answers `-V=full` in the form cmd/go's toolID parser
// accepts: "<name> version devel buildID=<id>", so `go vet -vettool`
// keys its action cache on this binary's content and re-runs the
// suite when the analyzers change.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	name := strings.TrimSuffix(filepath.Base(exe), ".exe")
	if out, err := exec.Command("go", "tool", "buildid", exe).Output(); err == nil {
		if id := strings.TrimSpace(string(out)); id != "" {
			fmt.Printf("%s version devel buildID=%s\n", name, id)
			return
		}
	}
	fmt.Printf("%s version statleaklint-1\n", name)
}

func main() {
	var (
		versionFlag = flag.String("V", "", "print version (vet protocol)")
		flagsFlag   = flag.Bool("flags", false, "print flag definitions as JSON (vet protocol)")
		listFlag    = flag.Bool("list", false, "list the analyzers and exit")
		jsonFlag    = flag.Bool("json", false, "emit the findings as JSON")
		sarifFlag   = flag.Bool("sarif", false, "emit the findings as SARIF 2.1.0")
		outFlag     = flag.String("out", "", "write the report to this file instead of stdout")
		supsFlag    = flag.Bool("suppressions", false, "list every //lint:ignore suppression and exit (exit 1 on malformed ones)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: statleaklint [packages]   # standalone, default ./...\n"+
				"       statleaklint <file>.cfg   # go vet -vettool protocol\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion() // cmd/go keys its action cache on this line
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range statleaklint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMode(args[0]) // exits
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}

	if *supsFlag {
		listSuppressions(pkgs) // exits
	}

	res, err := analysis.RunAnalyzersDetail(pkgs, statleaklint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
	relativize(res)

	var out io.Writer = os.Stdout
	var outFile *os.File
	if *outFlag != "" {
		outFile, err = os.Create(*outFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statleaklint:", err)
			os.Exit(2)
		}
		out = outFile
	}
	switch {
	case *jsonFlag:
		err = analysis.WriteJSON(out, statleaklint.Analyzers(), res)
	case *sarifFlag:
		err = analysis.WriteSARIF(out, statleaklint.Analyzers(), res)
	default:
		for _, f := range res.Findings {
			fmt.Fprintln(out, f)
		}
	}
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "statleaklint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

// relativize rewrites finding paths relative to the working directory
// so reports are stable across checkouts (and match what SARIF viewers
// expect for repository-rooted artifact URIs).
func relativize(res *analysis.Result) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for _, list := range [][]analysis.Finding{res.Findings, res.Suppressed} {
		for i := range list {
			if rel, err := filepath.Rel(wd, list[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				list[i].Pos.Filename = filepath.ToSlash(rel)
			}
		}
	}
}

// listSuppressions prints every //lint:ignore comment with its
// analyzers and reason, then any malformed ones, and exits — nonzero
// when a suppression fails the enforced-reason check.
func listSuppressions(pkgs []*analysis.LoadedPackage) {
	sups, problems := analysis.CollectSuppressions(pkgs)
	wd, _ := os.Getwd()
	for _, s := range sups {
		name := s.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", name, s.Pos.Line, strings.Join(s.Analyzers, ","), s.Reason)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "statleaklint: %d suppression(s), %d problem(s)\n", len(sups), len(problems))
	if len(problems) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}
