package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/statleaklint"
)

// vetConfig is the JSON unit-of-work description cmd/go hands a
// -vettool for each package, mirroring the fields of
// golang.org/x/tools/go/analysis/unitchecker.Config that this tool
// consumes. PackageFile maps canonical import paths to gc export-data
// files, which plugs straight into the same importer the standalone
// loader uses.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode runs the suite on one vet unit and exits: 0 when clean,
// 1 with file:line:col diagnostics on stderr otherwise. The suite
// defines no cross-package facts, so the .vetx output is an empty
// placeholder, written unconditionally because cmd/go caches it.
func vetMode(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "statleaklint: parsing %s: %v\n", cfgPath, err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	imp := analysis.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	filenames := make([]string, len(cfg.GoFiles))
	for i, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames[i] = f
	}
	lp, err := analysis.CheckFiles(fset, cfg.ImportPath, filenames, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	if !cfg.VetxOnly {
		findings, err = analysis.RunAnalyzers([]*analysis.LoadedPackage{lp}, statleaklint.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "statleaklint:", err)
			os.Exit(2)
		}
	}
	writeVetx(cfg.VetxOutput)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "statleaklint:", err)
		os.Exit(2)
	}
}
