// benchjson converts `go test -bench -benchmem` text output (read on
// stdin) into a machine-readable JSON artifact for regression
// tracking. It is a tee: every input line is echoed to stdout so
// `make bench-json` still shows the live benchmark stream, while the
// parsed results land in the -out file.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -out BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("out", "", "path for the JSON artifact (default: stdout only)")
	flag.Parse()

	report, err := benchjson.Parse(benchjson.Tee(bufio.NewScanner(os.Stdin), os.Stdout))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')

	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(report.Benchmarks), *out)
}
