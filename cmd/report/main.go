// Command report prints a timing/leakage analysis report for one
// circuit — the report_timing/report_power analogue of the toolkit:
// nominal and statistical delay, the k worst paths, the most critical
// gates (by SSTA criticality probability), and the biggest leakers.
//
// Usage:
//
//	report -circuit s880
//	report -bench design.bench -paths 10 -leakers 15
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
	"repro/internal/verilog"
	"repro/internal/yield"
)

func main() {
	var (
		circuit   = flag.String("circuit", "", "synthetic suite circuit name")
		benchFile = flag.String("bench", "", "path to a .bench or .v netlist")
		preset    = flag.String("preset", "100nm", "technology preset")
		nPaths    = flag.Int("paths", 5, "worst paths to report")
		nLeakers  = flag.Int("leakers", 10, "top leaking gates to report")
		nCrit     = flag.Int("critical", 10, "most critical gates to report")
	)
	flag.Parse()

	c, err := loadCircuit(*circuit, *benchFile)
	if err != nil {
		fatal(err)
	}
	p, err := tech.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	lib, err := tech.NewLibrary(p)
	if err != nil {
		fatal(err)
	}
	vm, err := variation.New(variation.Default(p.LeffNom))
	if err != nil {
		fatal(err)
	}
	d, err := core.NewDesign(c, lib, vm)
	if err != nil {
		fatal(err)
	}

	st, err := c.ComputeStats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("report for %s (%s)\n", c.Name, p.Name)
	fmt.Printf("  %d gates (%d FFs), %d PIs, %d POs, depth %d, max fanout %d\n\n",
		st.Gates, c.NumDffs(), st.Inputs, st.Outputs, st.Depth, st.MaxFanout)

	// Timing: analyze once for the max delay, then re-analyze with
	// Tmax = MaxDelay so slacks are zero-normalized.
	tr0, err := sta.Analyze(d, 1)
	if err != nil {
		fatal(err)
	}
	tr, err := sta.Analyze(d, tr0.MaxDelay)
	if err != nil {
		fatal(err)
	}
	// Statistical view through the shared evaluation engine (the same
	// incremental-SSTA path the optimizers iterate on).
	eng, err := engine.New(d, engine.Config{TmaxPs: tr0.MaxDelay})
	if err != nil {
		fatal(err)
	}
	sr, err := eng.Timing()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("timing (all cells LVT, min size):\n")
	fmt.Printf("  nominal max delay  %10.1f ps\n", tr.MaxDelay)
	fmt.Printf("  statistical        %10.1f ps mean, %.1f ps sigma, %.1f ps q99\n\n",
		sr.Delay.Mean, sr.Delay.Sigma(), sr.Quantile(0.99))

	// Timing-yield curve around the nominal max delay: one shared SSTA
	// pass serves every constraint queried.
	ya, err := yield.Analyze(d)
	if err != nil {
		fatal(err)
	}
	factors := []float64{1.0, 1.05, 1.1, 1.2, 1.3}
	tmaxs := make([]float64, len(factors))
	for i, f := range factors {
		tmaxs[i] = f * tr0.MaxDelay
	}
	fmt.Printf("timing yield (SSTA):\n")
	for i, y := range ya.Curve(tmaxs) {
		fmt.Printf("  T = %.2f x nominal (%8.1f ps): %.4f\n", factors[i], tmaxs[i], y)
	}
	fmt.Println()

	paths, err := sta.TopPaths(d, *nPaths)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worst %d paths:\n", len(paths))
	for i, pth := range paths {
		fmt.Printf("  %2d. %s\n", i+1, sta.FormatPath(d, pth))
	}
	fmt.Println()

	// Criticality.
	crit, err := eng.Criticality()
	if err != nil {
		fatal(err)
	}
	type gateVal struct {
		id int
		v  float64
	}
	var cv []gateVal
	for _, g := range c.Gates() {
		if g.Type != logic.Input {
			cv = append(cv, gateVal{g.ID, crit[g.ID]})
		}
	}
	sort.Slice(cv, func(i, j int) bool { return cv[i].v > cv[j].v })
	fmt.Printf("most critical gates (P(on critical path)):\n")
	for i := 0; i < *nCrit && i < len(cv); i++ {
		g := c.Gate(cv[i].id)
		fmt.Printf("  %-12s %-6s crit %.3f  slack %.1f ps\n",
			g.Name, g.Type, cv[i].v, tr.Slack[g.ID])
	}
	fmt.Println()

	// Leakage.
	an, err := leakage.Exact(d)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("leakage:\n")
	fmt.Printf("  nominal %.0f nW, statistical mean %.0f nW, q99 %.0f nW (%.2fx nominal)\n\n",
		d.TotalLeak(), an.MeanNW, an.Quantile(0.99), an.Quantile(0.99)/d.TotalLeak())

	var lv []gateVal
	for _, g := range c.Gates() {
		if g.Type != logic.Input {
			lv = append(lv, gateVal{g.ID, d.GateLeak(g.ID)})
		}
	}
	sort.Slice(lv, func(i, j int) bool { return lv[i].v > lv[j].v })
	fmt.Printf("top leakers:\n")
	for i := 0; i < *nLeakers && i < len(lv); i++ {
		g := c.Gate(lv[i].id)
		fmt.Printf("  %-12s %-6s %8.1f nW  (crit %.3f)\n", g.Name, g.Type, lv[i].v, crit[g.ID])
	}
}

func loadCircuit(suiteName, path string) (*logic.Circuit, error) {
	switch {
	case suiteName != "" && path != "":
		return nil, fmt.Errorf("report: use -circuit or -bench, not both")
	case suiteName != "":
		if cfg, err := bench.SuiteConfig(suiteName); err == nil {
			return bench.Generate(cfg)
		}
		scfg, err := bench.SeqSuiteConfig(suiteName)
		if err != nil {
			return nil, err
		}
		return bench.GenerateSeq(scfg)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(path, ".v") || strings.HasSuffix(path, ".sv") {
			return verilog.Parse(f)
		}
		return bench.Parse(path, f)
	default:
		return nil, fmt.Errorf("report: need -circuit or -bench (see -h)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
