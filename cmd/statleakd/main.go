// Command statleakd is the optimization service daemon: it exposes
// the optimizers behind an HTTP JSON job API with Prometheus metrics
// and pprof, running jobs on a bounded worker pool.
//
// Usage:
//
//	statleakd -addr :8080 -workers 4 -queue 32 -result-ttl 15m \
//	          -job-timeout 1h -retry-base 1s
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}[/result]], /metrics,
// /healthz, /debug/pprof/. See internal/server and the README
// quickstart for a curl walkthrough.
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains queued
// and running work for -drain-timeout, then force-cancels whatever is
// left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent optimization jobs")
		queueDepth   = flag.Int("queue", 16, "pending-job queue capacity")
		resultTTL    = flag.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay fetchable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running jobs")
		jobTimeout   = flag.Duration("job-timeout", time.Hour, "per-attempt wall-clock cap and default (0 disables; requests may ask for less via timeout_sec)")
		retryBase    = flag.Duration("retry-base", time.Second, "first retry backoff for jobs submitted with max_retries (doubles per attempt)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, lvl)

	mgr := server.NewManager(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		ResultTTL:      *resultTTL,
		MaxJobTimeout:  *jobTimeout,
		RetryBaseDelay: *retryBase,
		Log:            log,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("statleakd listening", "addr", *addr, "workers", *workers, "queue", *queueDepth)

	select {
	case err := <-errc:
		// Listener died before any signal: nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}
	log.Info("shutdown: draining", "timeout", drainTimeout.String())

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("http shutdown incomplete", "err", err.Error())
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Warn("drain deadline hit; running jobs cancelled", "err", err.Error())
	} else {
		log.Info("drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "statleakd:", err)
	os.Exit(1)
}
