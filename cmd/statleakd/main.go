// Command statleakd is the optimization service daemon: it exposes
// the optimizers behind an HTTP JSON job API with Prometheus metrics
// and pprof, running jobs on a bounded worker pool.
//
// Usage:
//
//	statleakd -addr :8080 -workers 4 -queue 32 -result-ttl 15m \
//	          -job-timeout 1h -retry-base 1s
//
// Endpoints: POST/GET/DELETE /v1/jobs[/{id}[/result]], /metrics,
// /healthz, /debug/pprof/. See internal/server and the README
// quickstart for a curl walkthrough.
//
// Coordinator mode turns N such replicas into one logical service:
//
//	statleakd -coordinator -addr :8090 \
//	          -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
// The coordinator speaks the same /v1/jobs API, shards submissions
// over the replicas by consistent hashing on the canonical request
// hash, probes replica health, re-dispatches a dead replica's
// in-flight jobs, and steals work away from hot shards. See
// internal/cluster and DESIGN.md §11; cmd/statleakctl drives either a
// replica or a coordinator.
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains queued
// and running work for -drain-timeout, then force-cancels whatever is
// left and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent optimization jobs")
		queueDepth   = flag.Int("queue", 16, "pending-job queue capacity")
		resultTTL    = flag.Duration("result-ttl", 15*time.Minute, "how long finished jobs stay fetchable")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running jobs")
		jobTimeout   = flag.Duration("job-timeout", time.Hour, "per-attempt wall-clock cap and default (0 disables; requests may ask for less via timeout_sec)")
		retryBase    = flag.Duration("retry-base", time.Second, "first retry backoff for jobs submitted with max_retries (doubles per attempt)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator over -replicas instead of executing jobs")
		replicas    = flag.String("replicas", "", "comma-separated statleakd base URLs the coordinator shards over")
		vnodes      = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "replica health-probe period")
		probeWait   = flag.Duration("probe-timeout", time.Second, "one probe's round-trip budget")
		failAfter   = flag.Int("fail-after", 2, "consecutive probe failures before a replica is declared dead")
		stealAt     = flag.Int("steal-threshold", 4, "ring owner's queue depth at which new jobs divert to the least-loaded replica (-1 disables)")
	)
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, lvl)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		runCoordinator(ctx, log, *addr, cluster.Config{
			Replicas:       strings.Split(*replicas, ","),
			VNodes:         *vnodes,
			ProbeInterval:  *probeEvery,
			ProbeTimeout:   *probeWait,
			FailAfter:      *failAfter,
			StealThreshold: *stealAt,
			Log:            log,
		}, *drainTimeout)
		return
	}

	mgr := server.NewManager(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		ResultTTL:      *resultTTL,
		MaxJobTimeout:  *jobTimeout,
		RetryBaseDelay: *retryBase,
		Log:            log,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(mgr),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("statleakd listening", "addr", *addr, "workers", *workers, "queue", *queueDepth)

	select {
	case err := <-errc:
		// Listener died before any signal: nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}
	log.Info("shutdown: draining", "timeout", drainTimeout.String())

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("http shutdown incomplete", "err", err.Error())
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Warn("drain deadline hit; running jobs cancelled", "err", err.Error())
	} else {
		log.Info("drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// runCoordinator serves the cluster front end until ctx is signalled.
// Replicas keep executing their jobs through a coordinator restart;
// the tracked table is rebuilt by idempotent resubmission from
// clients, so a coordinator stop only needs to quiesce its own HTTP
// server and prober.
func runCoordinator(ctx context.Context, log *obs.Logger, addr string, cfg cluster.Config, drainTimeout time.Duration) {
	coord, err := cluster.New(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           cluster.Handler(coord),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("statleakd coordinator listening", "addr", addr)

	select {
	case err := <-errc:
		coord.Stop()
		fatal(err)
	case <-ctx.Done():
	}
	log.Info("coordinator shutdown")
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("http shutdown incomplete", "err", err.Error())
	}
	coord.Stop()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "statleakd:", err)
	os.Exit(1)
}
