// Command benchgen writes synthetic ISCAS85-class netlists in .bench
// format.
//
// Usage:
//
//	benchgen -name s880            # one circuit to stdout
//	benchgen -all -dir ./bench     # the whole suite to a directory
//	benchgen -inputs 32 -outputs 8 -gates 500 -depth 20 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/verilog"
)

func main() {
	var (
		name    = flag.String("name", "", "suite circuit name (s432 … s7552, q344 … q5378)")
		all     = flag.Bool("all", false, "generate the whole suite (combinational + sequential)")
		dir     = flag.String("dir", ".", "output directory for -all")
		format  = flag.String("format", "bench", "output format: bench or verilog")
		inputs  = flag.Int("inputs", 0, "custom circuit: primary inputs")
		outputs = flag.Int("outputs", 0, "custom circuit: primary outputs")
		gates   = flag.Int("gates", 0, "custom circuit: target gate count")
		depth   = flag.Int("depth", 0, "custom circuit: target logic depth")
		seed    = flag.Int64("seed", 1, "custom circuit: generation seed")
	)
	flag.Parse()

	emit, ext, err := emitter(*format)
	if err != nil {
		fatal(err)
	}
	switch {
	case *all:
		if err := writeSuite(*dir, emit, ext); err != nil {
			fatal(err)
		}
	case *name != "":
		c, err := generateByName(*name)
		if err != nil {
			fatal(err)
		}
		if err := emit(os.Stdout, c); err != nil {
			fatal(err)
		}
	case *gates > 0:
		c, err := bench.Generate(bench.Config{
			Name:    "custom",
			Inputs:  *inputs,
			Outputs: *outputs,
			Gates:   *gates,
			Depth:   *depth,
			Seed:    *seed,
		})
		if err != nil {
			fatal(err)
		}
		if err := emit(os.Stdout, c); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchgen: need -name, -all, or -gates (see -h)")
		os.Exit(2)
	}
}

// emitter selects the output format.
func emitter(format string) (func(io.Writer, *logic.Circuit) error, string, error) {
	switch format {
	case "bench":
		return bench.Write, ".bench", nil
	case "verilog":
		return verilog.Write, ".v", nil
	}
	return nil, "", fmt.Errorf("benchgen: unknown format %q (bench, verilog)", format)
}

// generateByName resolves a suite circuit name across both suites.
func generateByName(name string) (*logic.Circuit, error) {
	if cfg, err := bench.SuiteConfig(name); err == nil {
		return bench.Generate(cfg)
	}
	scfg, err := bench.SeqSuiteConfig(name)
	if err != nil {
		return nil, err
	}
	return bench.GenerateSeq(scfg)
}

func writeSuite(dir string, emit func(io.Writer, *logic.Circuit) error, ext string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var names []string
	names = append(names, bench.SuiteNames()...)
	names = append(names, bench.SeqSuiteNames()...)
	for _, name := range names {
		c, err := generateByName(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, c.Name+ext)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f, c); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
