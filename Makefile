# Tier-1 checks (vet/build/test), the statleaklint invariant suite,
# and the race pass over every package (the engine.ScoreAll and
# montecarlo worker pools are the concurrent hot spots, but -race runs
# repo-wide so new goroutines are covered by default).

GO ?= go

.PHONY: ci lint vet statleaklint build test race bench

ci: lint build test race

# lint = go vet plus the repository's own analyzer suite. statleaklint
# enforces the engine's determinism/transactionality invariants; see
# DESIGN.md §"Static analysis" and internal/analysis/.
lint: vet statleaklint

vet:
	$(GO) vet ./...

statleaklint:
	$(GO) run ./cmd/statleaklint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the evaluation (see bench_test.go / DESIGN.md §5).
bench:
	$(GO) test -run xxx -bench . -benchmem .
