# Tier-1 checks plus the race pass over the concurrent paths
# (engine.ScoreAll worker pool, montecarlo sample pool).

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine ./internal/montecarlo

# bench regenerates the evaluation (see bench_test.go / DESIGN.md §5).
bench:
	$(GO) test -run xxx -bench . -benchmem .
