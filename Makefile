# Tier-1 checks (vet/build/test), the statleaklint invariant suite,
# and the race pass over every package (the engine.ScoreAll and
# montecarlo worker pools are the concurrent hot spots, but -race runs
# repo-wide so new goroutines are covered by default).

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci lint vet statleaklint build test race bench fuzz daemon

ci: lint build test race fuzz

# lint = go vet plus the repository's own analyzer suite. statleaklint
# enforces the engine's determinism/transactionality invariants; see
# DESIGN.md §"Static analysis" and internal/analysis/.
lint: vet statleaklint

vet:
	$(GO) vet ./...

statleaklint:
	$(GO) run ./cmd/statleaklint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the evaluation (see bench_test.go / DESIGN.md §5).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# fuzz smoke: a short randomized pass over both netlist parsers.
# FUZZTIME=5m fuzz for a longer hunt; corpus accumulates in GOCACHE.
fuzz:
	$(GO) test ./internal/bench -fuzz=FuzzParseBench -fuzztime=$(FUZZTIME) -fuzzminimizetime=5s
	$(GO) test ./internal/verilog -fuzz=FuzzParseVerilog -fuzztime=$(FUZZTIME) -fuzzminimizetime=5s

# daemon builds and starts statleakd on :8080 (see README quickstart).
daemon:
	$(GO) run ./cmd/statleakd -addr :8080
