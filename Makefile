# Tier-1 checks (vet/build/test), the statleaklint invariant suite,
# and the race pass over every package (the engine.ScoreAll and
# montecarlo worker pools are the concurrent hot spots, but -race runs
# repo-wide so new goroutines are covered by default).

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci lint vet statleaklint lint-sarif build test race scenario chaos cluster speculate isle bench bench-json experiments-output fuzz daemon

ci: lint build test race scenario chaos cluster speculate isle fuzz

# lint = go vet plus the repository's own analyzer suite. statleaklint
# enforces the engine's determinism/transactionality/concurrency
# invariants; the -suppressions pass fails on any //lint:ignore whose
# reason is missing. See DESIGN.md §"Static analysis" and
# internal/analysis/.
lint: vet statleaklint

vet:
	$(GO) vet ./...

statleaklint:
	$(GO) run ./cmd/statleaklint ./...
	$(GO) run ./cmd/statleaklint -suppressions ./... >/dev/null

# lint-sarif emits the machine-readable report CI uploads (suppressed
# findings included, marked inSource).
lint-sarif:
	$(GO) run ./cmd/statleaklint -sarif -out statleaklint.sarif ./... || true

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# scenario runs the corner-family suite under the race detector: the
# Family's cross-corner scoring fan-out, the scenario matrix itself,
# and the 1×1-matrix golden equivalence guard (family must retrace the
# single-engine trajectories bit-for-bit).
scenario:
	$(GO) test -race -run 'TestFamily|TestScenario|TestCornerView|TestNominalMatrix' ./internal/engine ./internal/scenario ./internal/core ./internal/opt

# chaos runs the fault-injection suite — server.FailPoints panics,
# hangs, and transient errors driving the worker pool's recovery,
# deadline, and retry/backoff policy — under the race detector. The
# same tests ride along in test/race; the dedicated target is the
# fast iteration loop for the job path (see DESIGN.md §8).
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/server

# cluster runs the sharded-coordinator suite under the race detector:
# the consistent-hash ring contracts (balance, ~1/N movement on a
# join), the registry's death/revival edges, and the 3-replica
# integration tests — routing, idempotent resubmission, proxied
# cancel, and the kill-a-replica failover path asserting exactly-once
# completion (see DESIGN.md §11).
cluster:
	$(GO) test -race -run 'TestCluster|TestRing|TestRegistry|TestSteal|TestStatus|TestRequest|TestCanonical|TestOutcome' ./internal/cluster

# speculate runs the speculative-pipeline equivalence suite under the
# race detector: the golden scoreboard with speculation forced on and
# forced off (bit-for-bit against the same pinned file), the
# fork/replay bitwise property, and the pipelined driver's edge cases
# (mispredict, peel-to-empty, cancellation joins). See DESIGN.md §12.
speculate:
	$(GO) test -race -run 'TestSpeculative|TestSerialConfig|TestPipelined|TestFork|TestObserve' ./internal/opt ./internal/search ./internal/engine

# isle runs the importance-sampling suite under the race detector:
# per-sample weight determinism across worker counts, the zero-shift
# bitwise reduction to plain sampling, the plain-vs-IS agreement
# property on ISCAS fixtures, the adaptive-budget loop, and the
# seed-stream aliasing regression (see DESIGN.md §13).
isle:
	$(GO) test -race -run 'TestIS|TestZeroShift|TestSeedStream|TestTimingIS|TestAdaptiveTimingIS|TestStreamSeed|TestSplitMix' ./internal/montecarlo ./internal/yield ./internal/stats

# bench runs every benchmark in the repository: the root evaluation
# harness (bench_test.go / DESIGN.md §5) plus the package-level
# micro-benchmarks (engine round scoring and worker resync, …).
# BENCHTIME=1x bench for a one-iteration smoke pass.
BENCHTIME ?= 1s
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./...

# bench-json runs the same sweep and renders the `go test -bench`
# output as machine-readable JSON (cmd/benchjson), the artifact CI
# uploads for regression tracking. BENCH_OUT names the trajectory file
# for the current PR (BENCH_OUT=foo.json bench-json to redirect).
BENCH_OUT ?= BENCH_10.json
bench-json:
	$(GO) test -run xxx -bench . -benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# experiments-output regenerates the committed sample of the
# experiment driver's output (reduced configuration, deterministic).
experiments-output:
	$(GO) run ./cmd/experiments -benchmarks s432,s880 -samples 500 > experiments_output.txt

# fuzz smoke: a short randomized pass over both netlist parsers.
# FUZZTIME=5m fuzz for a longer hunt; corpus accumulates in GOCACHE.
fuzz:
	$(GO) test ./internal/bench -fuzz=FuzzParseBench -fuzztime=$(FUZZTIME) -fuzzminimizetime=5s
	$(GO) test ./internal/verilog -fuzz=FuzzParseVerilog -fuzztime=$(FUZZTIME) -fuzzminimizetime=5s

# daemon builds and starts statleakd on :8080 (see README quickstart).
daemon:
	$(GO) run ./cmd/statleakd -addr :8080
